//! A readiness-driven connection reactor: one thread, every socket.
//!
//! The thread-per-connection model this replaces spent one OS thread (and
//! its stack) per client doing nothing but sleeping in `read`. The
//! reactor inverts that: a single thread owns a nonblocking listener and
//! every accepted socket, parks in `epoll_wait`, and runs the *cheap*
//! per-connection work — framing ([`LineBuffer`]), protocol dispatch,
//! reply writes — only when the kernel says a socket is ready. Heavy
//! evaluation still happens on the owning server's worker pool; the
//! reactor's contract with it is the [`ReplyHandle`]: a cloneable ticket
//! that posts reply lines (and, on drop, a release notice) to a mailbox
//! the reactor drains, with an `eventfd` to wake a parked `epoll_wait`
//! from worker threads. Ten thousand idle connections therefore cost ten
//! thousand file descriptors and slab entries — not ten thousand stacks.
//!
//! # Connection state machine
//!
//! ```text
//!            ┌────────────── readable ──────────────┐
//!            ▼                                      │
//!   accept ─▶ OPEN ── frame fault / EOF / idle ─▶ READ-DONE
//!            │  ▲                                   │
//!            │  └── replies queue / flush ──────────┤
//!            │                                      ▼
//!            └── write fault / overflow ──▶ CLOSED ◀┘ (outbuf flushed
//!                                                      and no live
//!                                                      ReplyHandle)
//! ```
//!
//! A connection whose read side finished is *not* torn down until every
//! outstanding [`ReplyHandle`] is dropped and its output buffer is
//! flushed — exactly the old model's property that a reply for work
//! already admitted is still delivered through the writer clone parked on
//! its flight. Slot reuse is generation-checked so a late reply for a
//! closed connection can never leak into its slot's next tenant.
//!
//! # Timeouts
//!
//! Socket timeouts do not exist on nonblocking fds, so the reactor keeps
//! the clocks itself and sweeps them on a coarse tick: a connection with
//! no buffered bytes and no traffic for the read timeout is **idle**
//! (reaped silently); one holding an incomplete line past the same bound
//! is **stalled** (the slow-loris shape — answered, then closed); queued
//! reply bytes unflushed past the write timeout mean the client stopped
//! reading and the connection is dropped.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::{JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use crate::readline::{Frame, LineBuffer};
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Bytes read per connection per readiness event before yielding to the
/// next ready socket; level-triggered epoll re-reports the remainder.
const READ_BUDGET: usize = 256 * 1024;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// How a connection's read side ended abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnFault {
    /// A request line exceeded the configured byte bound.
    TooLong,
    /// A request line was not valid UTF-8.
    NotUtf8,
    /// An incomplete line outlived the per-line deadline (slow loris).
    Stalled,
    /// No bytes at all within the read timeout (idle reap).
    Idle,
}

/// The per-connection protocol logic a reactor drives. Implementations
/// run on the reactor thread for `on_line`/`on_fault` and must not block
/// on slow work — hand it to a pool and reply through the handle later.
pub(crate) trait ConnHandler: Send + Sync + 'static {
    /// A connection was accepted.
    fn on_open(&self);
    /// A complete, non-empty request line arrived. Reply now or park the
    /// (cloned) handle and reply from another thread later.
    fn on_line(&self, reply: &ReplyHandle, line: &str);
    /// The read side ended abnormally. The returned line, if any, is
    /// queued as the connection's final reply before it closes.
    fn on_fault(&self, fault: ConnFault) -> Option<String>;
}

#[derive(Debug)]
enum Msg {
    /// One reply line for a connection (newline appended on delivery).
    Line { slot: usize, gen: u64, line: String },
    /// A [`ReplyHandle`]'s last clone was dropped.
    Released { slot: usize, gen: u64 },
}

/// State shared between the reactor thread and everyone who holds a
/// [`ReplyHandle`] or drives the drain protocol.
///
/// # Drain contract
///
/// [`begin_drain`](Self::begin_drain) stops the listener; the *owner*
/// (server/router) must then finish outstanding work — delivering replies
/// through still-live handles — and call
/// [`finish_drain`](Self::finish_drain). The reactor exits once drained
/// and flushed (bounded by a linger so a dead client cannot wedge
/// shutdown).
#[derive(Debug)]
pub(crate) struct ReactorShared {
    mailbox: Mutex<Vec<Msg>>,
    waker: WakeFd,
    reactor_thread: OnceLock<ThreadId>,
    draining: AtomicBool,
    drain_done: AtomicBool,
}

impl ReactorShared {
    /// Creates the shared state (allocates the wake eventfd).
    pub(crate) fn new() -> io::Result<Arc<ReactorShared>> {
        Ok(Arc::new(ReactorShared {
            mailbox: Mutex::new(Vec::new()),
            waker: WakeFd::new()?,
            reactor_thread: OnceLock::new(),
            draining: AtomicBool::new(false),
            drain_done: AtomicBool::new(false),
        }))
    }

    fn post(&self, msg: Msg) {
        self.mailbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(msg);
        // The reactor drains its mailbox before parking again, so a post
        // from its own thread (the inline cache-hit path) needs no
        // syscall; only foreign threads must interrupt `epoll_wait`.
        if self.reactor_thread.get().copied() != Some(std::thread::current().id()) {
            self.waker.wake();
        }
    }

    /// Flags the drain (idempotent) and wakes the reactor so it stops
    /// accepting. Returns whether this call was the first.
    pub(crate) fn begin_drain(&self) -> bool {
        let first = !self.draining.swap(true, Ordering::SeqCst);
        if first {
            self.waker.wake();
        }
        first
    }

    /// Signals that the owner finished its outstanding work; the reactor
    /// flushes remaining replies and exits.
    pub(crate) fn finish_drain(&self) {
        self.drain_done.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Whether a drain has begun.
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct HandleGuard {
    slot: usize,
    gen: u64,
    shared: Arc<ReactorShared>,
}

impl Drop for HandleGuard {
    fn drop(&mut self) {
        self.shared.post(Msg::Released {
            slot: self.slot,
            gen: self.gen,
        });
    }
}

/// A cloneable reply ticket for one connection. All clones share one
/// guard; when the last clone drops, the reactor learns no further
/// replies are coming and may finish the connection.
#[derive(Debug, Clone)]
pub(crate) struct ReplyHandle {
    guard: Arc<HandleGuard>,
}

impl ReplyHandle {
    /// Queues one reply line (without trailing newline) for delivery.
    /// Infallible by design: a vanished client is not the replier's
    /// error — the reactor drops lines for dead connections.
    pub(crate) fn send_line(&self, line: &str) {
        self.guard.shared.post(Msg::Line {
            slot: self.guard.slot,
            gen: self.guard.gen,
            line: line.to_string(),
        });
    }
}

/// Reactor tuning; mirrors the owning server's connection knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReactorConfig {
    /// Hard per-request-line byte bound.
    pub max_line_bytes: usize,
    /// Idle reap + per-line completion deadline (`None` = never).
    pub read_timeout: Option<Duration>,
    /// Bound on how long queued reply bytes may stay unflushed before
    /// the client is declared dead (`None` = never).
    pub write_timeout: Option<Duration>,
}

impl ReactorConfig {
    fn out_limit(&self) -> usize {
        // A slow consumer may buffer a few replies, not the world.
        (2 * self.max_line_bytes).max(8 * 1024 * 1024)
    }

    /// Sweep granularity: fine enough that timeouts fire near their
    /// nominal value, coarse enough to cost nothing.
    fn tick(&self) -> Option<Duration> {
        let ms = |d: Option<Duration>| d.map(|t| t.as_millis().max(1) as u64);
        match (ms(self.read_timeout), ms(self.write_timeout)) {
            (None, None) => None,
            (a, b) => {
                let t = a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX));
                Some(Duration::from_millis((t / 4).clamp(5, 250)))
            }
        }
    }
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    lines: LineBuffer,
    out: Vec<u8>,
    out_pos: usize,
    /// Events currently registered with epoll for this socket.
    interest: u32,
    /// Last byte received (or accept time).
    last_activity: Instant,
    /// When the first byte of the line currently being assembled arrived.
    line_started: Option<Instant>,
    /// Read side finished (EOF, fault, idle): no more framing, but the
    /// connection lives until flushed and released.
    read_done: bool,
    /// Live [`ReplyHandle`] guards that may still post replies.
    handles: usize,
    /// Since when the output buffer has been non-empty (write timeout).
    out_since: Option<Instant>,
}

enum FlushOutcome {
    Flushed,
    Partial,
    Dead,
}

struct Reactor<H: ConnHandler> {
    epoll: Epoll,
    listener: Option<TcpListener>,
    cfg: ReactorConfig,
    shared: Arc<ReactorShared>,
    handler: Arc<H>,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counters (bumped on reuse; outlive the conn).
    gens: Vec<u64>,
    free: Vec<usize>,
    listener_dropped: bool,
}

/// Spawns the reactor thread over an already-bound listener.
pub(crate) fn spawn<H: ConnHandler>(
    listener: TcpListener,
    cfg: ReactorConfig,
    shared: Arc<ReactorShared>,
    handler: Arc<H>,
) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(shared.waker.raw_fd(), EPOLLIN, TOKEN_WAKER)?;
    let reactor = Reactor {
        epoll,
        listener: Some(listener),
        cfg,
        shared,
        handler,
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        listener_dropped: false,
    };
    std::thread::Builder::new()
        .name("doppio-reactor".into())
        .spawn(move || reactor.run())
}

fn is_wouldblock(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

impl<H: ConnHandler> Reactor<H> {
    fn run(mut self) {
        let _ = self.shared.reactor_thread.set(std::thread::current().id());
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        let mut chunk = vec![0u8; 16 * 1024];
        let mut last_sweep = Instant::now();
        let mut flush_linger: Option<Instant> = None;

        loop {
            let timeout_ms = self.wait_timeout_ms();
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => 0,
                // An epoll instance failing wholesale is unrecoverable;
                // exiting (and dropping every socket) beats spinning.
                Err(_) => break,
            };
            for ev in events.iter().take(n) {
                let token = ev.data;
                let flags = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    t => {
                        let idx = (t - TOKEN_BASE) as usize;
                        if flags & EPOLLOUT != 0 {
                            self.flush_and_settle(idx);
                        }
                        if flags & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                            self.handle_readable(idx, &mut chunk);
                        }
                    }
                }
            }

            self.deliver_mailbox();

            if self.shared.is_draining() && !self.listener_dropped {
                self.listener_dropped = true;
                if let Some(l) = self.listener.take() {
                    let _ = self.epoll.delete(l.as_raw_fd());
                }
            }

            if let Some(tick) = self.cfg.tick() {
                if last_sweep.elapsed() >= tick {
                    last_sweep = Instant::now();
                    self.sweep(last_sweep);
                }
            }

            if self.shared.drain_done.load(Ordering::SeqCst) {
                // Everything the owner will ever post is posted; allow a
                // bounded linger for the final flush to slow readers.
                let linger = *flush_linger.get_or_insert_with(|| {
                    Instant::now()
                        + self
                            .cfg
                            .write_timeout
                            .unwrap_or(Duration::from_secs(1))
                            .min(Duration::from_secs(5))
                });
                let mailbox_empty = self
                    .shared
                    .mailbox
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_empty();
                let all_flushed = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| c.out_pos >= c.out.len());
                if (mailbox_empty && all_flushed) || Instant::now() >= linger {
                    break;
                }
            }
        }
    }

    /// `epoll_wait` timeout: the sweep tick when clocks are armed and
    /// connections exist, a fast pace while finishing a drain, otherwise
    /// a coarse idle heartbeat (the waker covers every urgent signal).
    fn wait_timeout_ms(&self) -> i32 {
        if self.shared.drain_done.load(Ordering::SeqCst) {
            return 10;
        }
        let have_conns = self.conns.iter().any(Option::is_some);
        match self.cfg.tick() {
            Some(t) if have_conns => t.as_millis().max(1) as i32,
            _ => 500,
        }
    }

    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.is_draining() {
                        continue; // accepted-and-dropped: drain refuses politely
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let now = Instant::now();
                    let idx = self.alloc_slot();
                    self.gens[idx] += 1;
                    let conn = Conn {
                        gen: self.gens[idx],
                        lines: LineBuffer::new(self.cfg.max_line_bytes),
                        out: Vec::new(),
                        out_pos: 0,
                        interest: EPOLLIN | EPOLLRDHUP,
                        last_activity: now,
                        line_started: None,
                        read_done: false,
                        handles: 0,
                        out_since: None,
                        stream,
                    };
                    let fd = conn.stream.as_raw_fd();
                    if self
                        .epoll
                        .add(fd, conn.interest, TOKEN_BASE + idx as u64)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(conn);
                    self.handler.on_open();
                }
                Err(e) if is_wouldblock(&e) => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient per-connection accept errors (ECONNABORTED
                // and friends): skip that connection, keep listening.
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.free.push(idx);
        }
    }

    fn handle_readable(&mut self, idx: usize, chunk: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.read_done {
            return;
        }
        let mut eof = false;
        let mut dead = false;
        let mut budget = READ_BUDGET;
        loop {
            match conn.stream.read(chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.lines.feed(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break; // level-triggered epoll re-reports the rest
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_wouldblock(&e) => break,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.close_conn(idx);
            return;
        }
        self.pump_frames(idx);
        if eof {
            if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                // Any unterminated trailing bytes are dropped: a
                // half-written request line never reaches the decoder.
                conn.read_done = true;
                self.update_interest(idx);
                self.maybe_finish_conn(idx);
            }
        }
    }

    /// Frames and dispatches every complete line buffered on `idx`.
    fn pump_frames(&mut self, idx: usize) {
        let mut consumed_any = false;
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if conn.read_done {
                return;
            }
            match conn.lines.next_frame() {
                None => break,
                Some(Frame::Line(line)) => {
                    consumed_any = true;
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    conn.handles += 1;
                    let handle = ReplyHandle {
                        guard: Arc::new(HandleGuard {
                            slot: idx,
                            gen: conn.gen,
                            shared: Arc::clone(&self.shared),
                        }),
                    };
                    // Panic isolation, same property the detached
                    // connection threads had: a panicking dispatch costs
                    // this one connection, never the reactor.
                    let handler = Arc::clone(&self.handler);
                    let ok = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        handler.on_line(&handle, trimmed);
                    }))
                    .is_ok();
                    drop(handle);
                    if !ok {
                        self.close_conn(idx);
                        return;
                    }
                }
                Some(fault) => {
                    let fault = match fault {
                        Frame::TooLong => ConnFault::TooLong,
                        _ => ConnFault::NotUtf8,
                    };
                    self.fault_conn(idx, fault);
                    return;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            if !conn.lines.has_partial() {
                conn.line_started = None;
            } else if consumed_any || conn.line_started.is_none() {
                // Either the partial tail belongs to a *new* pipelined
                // line (its clock starts now) or its first byte just
                // arrived.
                conn.line_started = Some(Instant::now());
            }
        }
    }

    /// Ends the read side with a fault, queueing the handler's final
    /// reply (if any) before the close-when-flushed path takes over.
    fn fault_conn(&mut self, idx: usize, fault: ConnFault) {
        let handler = Arc::clone(&self.handler);
        let reply =
            std::panic::catch_unwind(AssertUnwindSafe(|| handler.on_fault(fault))).unwrap_or(None);
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if let Some(line) = reply {
            conn.out.reserve(line.len() + 1);
            conn.out.extend_from_slice(line.as_bytes());
            conn.out.push(b'\n');
            if conn.out_since.is_none() {
                conn.out_since = Some(Instant::now());
            }
        }
        conn.read_done = true;
        self.flush_and_settle(idx);
    }

    /// Applies mailbox messages to their connections, then flushes every
    /// connection that was touched.
    fn deliver_mailbox(&mut self) {
        let msgs = {
            let mut mb = self
                .shared
                .mailbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if mb.is_empty() {
                return;
            }
            std::mem::take(&mut *mb)
        };
        let mut touched: Vec<usize> = Vec::with_capacity(msgs.len());
        for msg in msgs {
            match msg {
                Msg::Line { slot, gen, line } => {
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        if conn.gen == gen {
                            conn.out.reserve(line.len() + 1);
                            conn.out.extend_from_slice(line.as_bytes());
                            conn.out.push(b'\n');
                            if conn.out_since.is_none() {
                                conn.out_since = Some(Instant::now());
                            }
                            touched.push(slot);
                        }
                    }
                }
                Msg::Released { slot, gen } => {
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        if conn.gen == gen {
                            conn.handles = conn.handles.saturating_sub(1);
                            touched.push(slot);
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            self.flush_and_settle(idx);
        }
    }

    /// Flushes what the socket will take, updates epoll interest, closes
    /// on write faults/overflow, and finishes a released connection.
    fn flush_and_settle(&mut self, idx: usize) {
        match self.flush_conn(idx) {
            FlushOutcome::Dead => self.close_conn(idx),
            FlushOutcome::Flushed | FlushOutcome::Partial => {
                self.update_interest(idx);
                self.maybe_finish_conn(idx);
            }
        }
    }

    fn flush_conn(&mut self, idx: usize) -> FlushOutcome {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return FlushOutcome::Flushed;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return FlushOutcome::Dead,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_wouldblock(&e) => break,
                Err(_) => return FlushOutcome::Dead,
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            conn.out_since = None;
            FlushOutcome::Flushed
        } else {
            // Compact the flushed prefix so the buffer bound measures
            // actually-pending bytes.
            if conn.out_pos > 0 {
                conn.out.copy_within(conn.out_pos.., 0);
                let len = conn.out.len() - conn.out_pos;
                conn.out.truncate(len);
                conn.out_pos = 0;
            }
            if conn.out.len() > self.cfg.out_limit() {
                return FlushOutcome::Dead;
            }
            FlushOutcome::Partial
        }
    }

    /// Recomputes and applies the epoll interest set for `idx`.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let mut want = 0;
        if !conn.read_done {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.out_pos < conn.out.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let token = TOKEN_BASE + idx as u64;
            let _ = self.epoll.modify(fd, want, token);
        }
    }

    /// Closes a connection whose read side finished once nothing further
    /// can arrive for it: no live handles, nothing left to flush.
    fn maybe_finish_conn(&mut self, idx: usize) {
        let done = self
            .conns
            .get(idx)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.read_done && c.handles == 0 && c.out_pos >= c.out.len());
        if done {
            self.close_conn(idx);
        }
    }

    /// Walks every connection's clocks: write-timeout overruns close,
    /// idle sockets are reaped, stalled half-lines are answered and
    /// closed.
    fn sweep(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            if let Some(wt) = self.cfg.write_timeout {
                if conn.out_since.is_some_and(|t| now.duration_since(t) > wt) {
                    self.close_conn(idx);
                    continue;
                }
            }
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            if conn.read_done {
                continue;
            }
            if let Some(rt) = self.cfg.read_timeout {
                if conn.lines.has_partial() || conn.lines.is_poisoned() {
                    if conn
                        .line_started
                        .is_some_and(|t| now.duration_since(t) > rt)
                    {
                        self.fault_conn(idx, ConnFault::Stalled);
                    }
                } else if now.duration_since(conn.last_activity) > rt {
                    self.fault_conn(idx, ConnFault::Idle);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::Shutdown;
    use std::sync::atomic::AtomicU64;

    /// An echo handler: replies `echo:<line>` inline, records faults,
    /// and can park a handle for a deferred cross-thread reply.
    struct Echo {
        opened: AtomicU64,
        faults: Mutex<Vec<ConnFault>>,
        parked: Mutex<Vec<ReplyHandle>>,
        park_next: AtomicBool,
    }

    impl Echo {
        fn new() -> Arc<Echo> {
            Arc::new(Echo {
                opened: AtomicU64::new(0),
                faults: Mutex::new(Vec::new()),
                parked: Mutex::new(Vec::new()),
                park_next: AtomicBool::new(false),
            })
        }
    }

    impl ConnHandler for Echo {
        fn on_open(&self) {
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
        fn on_line(&self, reply: &ReplyHandle, line: &str) {
            if self.park_next.swap(false, Ordering::SeqCst) {
                self.parked.lock().unwrap().push(reply.clone());
            } else {
                reply.send_line(&format!("echo:{line}"));
            }
        }
        fn on_fault(&self, fault: ConnFault) -> Option<String> {
            self.faults.lock().unwrap().push(fault);
            match fault {
                ConnFault::Idle => None,
                f => Some(format!("fault:{f:?}")),
            }
        }
    }

    struct Rig {
        addr: std::net::SocketAddr,
        shared: Arc<ReactorShared>,
        thread: Option<JoinHandle<()>>,
        echo: Arc<Echo>,
    }

    impl Rig {
        fn start(cfg: ReactorConfig) -> Rig {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let shared = ReactorShared::new().unwrap();
            let echo = Echo::new();
            let thread = spawn(listener, cfg, Arc::clone(&shared), Arc::clone(&echo)).unwrap();
            Rig {
                addr,
                shared,
                thread: Some(thread),
                echo,
            }
        }

        fn connect(&self) -> TcpStream {
            let s = TcpStream::connect(self.addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        }
    }

    impl Drop for Rig {
        fn drop(&mut self) {
            self.shared.begin_drain();
            self.shared.finish_drain();
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    fn cfg() -> ReactorConfig {
        ReactorConfig {
            max_line_bytes: 1024,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(5)),
        }
    }

    #[test]
    fn echoes_pipelined_lines_in_order() {
        let rig = Rig::start(cfg());
        let mut s = rig.connect();
        s.write_all(b"alpha\nbeta\r\ngamma\n").unwrap();
        let mut reader = BufReader::new(s);
        for want in ["echo:alpha", "echo:beta", "echo:gamma"] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), want);
        }
        assert_eq!(rig.echo.opened.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replies_before_eof_are_delivered_after_write_shutdown() {
        let rig = Rig::start(cfg());
        let mut s = rig.connect();
        s.write_all(b"one\ntwo\n").unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut reader = BufReader::new(s);
        let mut got = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            got.push(line.trim_end().to_string());
        }
        assert_eq!(got, ["echo:one", "echo:two"]);
    }

    #[test]
    fn deferred_cross_thread_reply_keeps_connection_alive() {
        let rig = Rig::start(cfg());
        rig.echo.park_next.store(true, Ordering::SeqCst);
        let mut s = rig.connect();
        s.write_all(b"later\n").unwrap();
        s.shutdown(Shutdown::Write).unwrap();

        // Wait until the handler parked the handle, then reply from this
        // foreign thread: the mailbox + waker path.
        let handle = loop {
            if let Some(h) = rig.echo.parked.lock().unwrap().pop() {
                break h;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        std::thread::sleep(Duration::from_millis(50));
        handle.send_line("deferred:later");
        drop(handle);

        let mut reader = BufReader::new(s);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "deferred:later");
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "then EOF");
    }

    #[test]
    fn oversized_line_gets_fault_reply_then_close() {
        let rig = Rig::start(cfg());
        let mut s = rig.connect();
        let big = vec![b'x'; 8 * 1024];
        let _ = s.write_all(&big);
        let _ = s.write_all(b"\n");
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "fault:TooLong");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "closed");
    }

    #[test]
    fn idle_connections_are_reaped_silently() {
        let rig = Rig::start(ReactorConfig {
            read_timeout: Some(Duration::from_millis(60)),
            ..cfg()
        });
        let s = rig.connect();
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "reaped: EOF");
        assert_eq!(
            rig.echo.faults.lock().unwrap().as_slice(),
            &[ConnFault::Idle]
        );
    }

    #[test]
    fn stalled_half_line_gets_fault_reply_then_close() {
        let rig = Rig::start(ReactorConfig {
            read_timeout: Some(Duration::from_millis(60)),
            ..cfg()
        });
        let mut s = rig.connect();
        s.write_all(b"never-finished").unwrap();
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "fault:Stalled");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "closed");
    }

    #[test]
    fn drain_refuses_new_work_and_joins() {
        let rig = Rig::start(cfg());
        let mut s = rig.connect();
        s.write_all(b"pre-drain\n").unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:pre-drain");

        rig.shared.begin_drain();
        rig.shared.finish_drain();
        // Existing connection is closed and the thread exits.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0);
    }
}
