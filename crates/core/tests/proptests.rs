//! Property tests for the analytical model's structural invariants.

use doppio_cluster::HybridConfig;
use doppio_events::{Bytes, Rate};
use doppio_model::{phases, ChannelModel, ErnestModel, PredictEnv, StageModel};
use doppio_sparksim::IoChannel;
use proptest::prelude::*;

fn arb_stage() -> impl Strategy<Value = StageModel> {
    (
        1u64..100_000,  // m
        0.01f64..100.0, // t_avg
        0.0f64..60.0,   // delta_scale
        1u64..1_000,    // D in GiB
        4u64..262_144,  // rs in KiB
        10.0f64..200.0, // stream cap MiB/s
        prop::sample::select(vec![
            IoChannel::HdfsRead,
            IoChannel::HdfsWrite,
            IoChannel::ShuffleRead,
            IoChannel::ShuffleWrite,
            IoChannel::PersistRead,
            IoChannel::PersistWrite,
        ]),
    )
        .prop_map(
            |(m, t_avg, delta_scale, d_gib, rs_kib, cap, channel)| StageModel {
                name: "s".into(),
                m,
                t_avg,
                delta_scale,
                channels: vec![ChannelModel::new(
                    channel,
                    Bytes::from_gib(d_gib),
                    Bytes::from_kib(rs_kib),
                    Some(Rate::mib_per_sec(cap)),
                )],
            },
        )
}

proptest! {
    /// More cores never hurt: predictions are non-increasing in P.
    #[test]
    fn prediction_monotone_in_cores(stage in arb_stage(), config in prop::sample::select(HybridConfig::ALL.to_vec())) {
        let mut prev = f64::INFINITY;
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            let t = stage.predict(&PredictEnv::hybrid(5, p, config));
            prop_assert!(t <= prev + 1e-9, "P={p}: {t} > {prev}");
            prop_assert!(t.is_finite() && t >= 0.0);
            prev = t;
        }
    }

    /// More nodes never hurt either (both terms divide by N).
    #[test]
    fn prediction_monotone_in_nodes(stage in arb_stage(), config in prop::sample::select(HybridConfig::ALL.to_vec())) {
        let mut prev = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16] {
            let t = stage.predict(&PredictEnv::hybrid(n, 16, config));
            prop_assert!(t <= prev + 1e-9);
            prev = t;
        }
    }

    /// A faster device never makes a stage slower.
    #[test]
    fn prediction_monotone_in_device(stage in arb_stage()) {
        // SsdSsd dominates HddHdd on both disks, at every request size.
        let fast = stage.predict(&PredictEnv::hybrid(5, 16, HybridConfig::SsdSsd));
        let slow = stage.predict(&PredictEnv::hybrid(5, 16, HybridConfig::HddHdd));
        prop_assert!(fast <= slow + 1e-9, "fast {fast} vs slow {slow}");
    }

    /// The prediction is always at least the scaling term and at least each
    /// disk's combined limit.
    #[test]
    fn prediction_is_the_binding_max(stage in arb_stage(), config in prop::sample::select(HybridConfig::ALL.to_vec())) {
        let env = PredictEnv::hybrid(4, 12, config);
        let t = stage.predict(&env);
        prop_assert!(t + 1e-9 >= stage.t_scale(&env));
        for role in [doppio_cluster::DiskRole::Hdfs, doppio_cluster::DiskRole::Local] {
            prop_assert!(t + 1e-9 >= stage.role_limit(role, &env));
        }
        let max = stage
            .t_scale(&env)
            .max(stage.role_limit(doppio_cluster::DiskRole::Hdfs, &env))
            .max(stage.role_limit(doppio_cluster::DiskRole::Local, &env));
        prop_assert!((t - max).abs() < 1e-9);
    }

    /// Phase classification is monotone in P: adding cores never moves a
    /// stage *back* toward NoContention.
    #[test]
    fn phases_monotone_in_cores(b in 0.5f64..64.0, lambda in 1.0f64..64.0) {
        let mut prev = phases::classify(0.5, b, lambda);
        for p in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            let ph = phases::classify(p, b, lambda);
            prop_assert!(ph >= prev);
            prev = ph;
        }
    }

    /// b and B behave like the definitions say.
    #[test]
    fn break_points_scale(bw in 1.0f64..2000.0, t in 1.0f64..200.0, lambda in 1.0f64..50.0) {
        let b = phases::break_point(Rate::mib_per_sec(bw), Rate::mib_per_sec(t));
        prop_assert!((b - bw / t).abs() < 1e-9);
        let big = phases::turning_point(lambda, b);
        prop_assert!(big + 1e-9 >= b, "B >= b since λ >= 1");
    }

    /// Ernest fits pure Amdahl curves exactly and predicts positively.
    #[test]
    fn ernest_recovers_amdahl(serial in 0.0f64..100.0, parallel in 1.0f64..1000.0) {
        let samples: Vec<(f64, f64)> = [1.0f64, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&x| (x, serial + parallel / x))
            .collect();
        let m = ErnestModel::fit(&samples).unwrap();
        for &(x, t) in &samples {
            prop_assert!((m.predict(x) - t).abs() < 1e-4 * t.max(1.0), "x={x}");
        }
        prop_assert!(m.predict(32.0) >= 0.0);
        for c in m.coefficients() {
            prop_assert!(c >= 0.0);
        }
    }
}
