//! Model-layer error type.

use std::fmt;

use doppio_sparksim::{IoChannel, SimError};

/// Errors surfaced while calibrating or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A profiling run failed in the simulator.
    Sim(SimError),
    /// A named sample run of the §VI.1 recipe failed — the label says
    /// which of the four runs, at what core count, on which devices.
    SampleRunFailed {
        /// Identity of the failed run, e.g.
        /// `sample run 3 of 4 (P=16, SSD hdfs / HDD local)`.
        run: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// Profiling runs disagreed on the stage list (they must execute the
    /// same application).
    StageMismatch {
        /// Identity of the divergent run.
        run: String,
        /// Stage count of the first run.
        expected: usize,
        /// Stage count of the divergent run.
        got: usize,
    },
    /// Every sample run returned an identical result — the platform
    /// ignored the calibration knobs, so the runs carry no signal to fit
    /// the model from.
    DuplicateSampleRuns {
        /// Identity of the reference run.
        run_a: String,
        /// Identity of one of its duplicates.
        run_b: String,
    },
    /// A stage executed no tasks, leaving nothing to fit `t_avg` from.
    EmptyStage {
        /// Name of the task-less stage.
        stage: String,
        /// Identity of the run that produced it.
        run: String,
    },
    /// A channel reported bytes but zero requests, so its mean request
    /// size — which the δ lookup needs — is undefined.
    NoRequests {
        /// Name of the stage holding the channel.
        stage: String,
        /// The degenerate channel.
        channel: IoChannel,
        /// Identity of the run that produced it.
        run: String,
    },
    /// The application produced no stages to model.
    NoStages,
    /// A regression fit had too few samples.
    NotEnoughSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The regression system was singular (e.g. duplicated sample points).
    SingularFit,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Sim(e) => write!(f, "profiling run failed: {e}"),
            ModelError::SampleRunFailed { run, source } => {
                write!(f, "{run} failed: {source}")
            }
            ModelError::StageMismatch { run, expected, got } => {
                write!(
                    f,
                    "{run} disagrees on the stage list: {got} stages where \
                     the first run produced {expected}"
                )
            }
            ModelError::DuplicateSampleRuns { run_a, run_b } => {
                write!(
                    f,
                    "profiling carried no signal: {run_b} (and every other \
                     sample run) returned a result identical to {run_a}"
                )
            }
            ModelError::EmptyStage { stage, run } => {
                write!(f, "stage '{stage}' in {run} executed no tasks")
            }
            ModelError::NoRequests {
                stage,
                channel,
                run,
            } => {
                write!(
                    f,
                    "stage '{stage}' in {run} reports {channel} bytes but \
                     zero requests; mean request size is undefined"
                )
            }
            ModelError::NoStages => write!(f, "application produced no stages"),
            ModelError::NotEnoughSamples { got, need } => {
                write!(f, "regression needs {need} samples, got {got}")
            }
            ModelError::SingularFit => write!(f, "regression system is singular"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Sim(e) | ModelError::SampleRunFailed { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ModelError {
    fn from(e: SimError) -> Self {
        ModelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::StageMismatch {
            run: "sample run 3 of 4 (P=16, SSD hdfs / HDD local)".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(
            e.to_string().contains("sample run 3 of 4"),
            "names the offending run: {e}"
        );
        assert!(ModelError::SingularFit.to_string().contains("singular"));
    }

    #[test]
    fn degenerate_input_errors_name_their_run() {
        let run = "sample run 1 of 4 (P=1, SSD hdfs / SSD local)".to_string();
        let empty = ModelError::EmptyStage {
            stage: "map".into(),
            run: run.clone(),
        };
        assert!(empty.to_string().contains("'map'") && empty.to_string().contains(&run));
        let noreq = ModelError::NoRequests {
            stage: "scan".into(),
            channel: IoChannel::HdfsRead,
            run: run.clone(),
        };
        assert!(noreq.to_string().contains("zero requests") && noreq.to_string().contains(&run));
        let dup = ModelError::DuplicateSampleRuns {
            run_a: run.clone(),
            run_b: "sample run 2 of 4 (P=2, SSD hdfs / SSD local)".into(),
        };
        assert!(dup.to_string().contains("no signal") && dup.to_string().contains(&run));
    }
}
