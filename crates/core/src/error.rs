//! Model-layer error type.

use std::fmt;

use doppio_sparksim::SimError;

/// Errors surfaced while calibrating or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A profiling run failed in the simulator.
    Sim(SimError),
    /// Profiling runs disagreed on the stage list (they must execute the
    /// same application).
    StageMismatch {
        /// Stage count of the first run.
        expected: usize,
        /// Stage count of the divergent run.
        got: usize,
    },
    /// The application produced no stages to model.
    NoStages,
    /// A regression fit had too few samples.
    NotEnoughSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The regression system was singular (e.g. duplicated sample points).
    SingularFit,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Sim(e) => write!(f, "profiling run failed: {e}"),
            ModelError::StageMismatch { expected, got } => {
                write!(f, "profiling runs disagree on stages: {expected} vs {got}")
            }
            ModelError::NoStages => write!(f, "application produced no stages"),
            ModelError::NotEnoughSamples { got, need } => {
                write!(f, "regression needs {need} samples, got {got}")
            }
            ModelError::SingularFit => write!(f, "regression system is singular"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ModelError {
    fn from(e: SimError) -> Self {
        ModelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::StageMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(ModelError::SingularFit.to_string().contains("singular"));
    }
}
