//! Model-driven job scheduling — the paper's other application.
//!
//! Section I: "in a shared cluster environment with a job scheduler, our
//! performance prediction model can allow the scheduler to know ahead the
//! approximating job execution time and thus enable better job scheduling
//! with less job waiting time."
//!
//! This module makes that concrete for a single shared cluster running one
//! job at a time (Spark's classic FIFO cluster mode): given calibrated
//! [`AppModel`]s for the queued jobs, a predicted-runtime-aware policy
//! (shortest-predicted-job-first) provably reduces mean waiting time over
//! submission-order FIFO, and the prediction error bounds how far from the
//! clairvoyant optimum it can land.

use std::fmt;

use crate::{AppModel, PredictEnv};

/// A job waiting in the queue.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Job name (for reports).
    pub name: String,
    /// Calibrated model used to predict the job's runtime.
    pub model: AppModel,
    /// Submission time, in seconds from the epoch of the schedule.
    pub submit_secs: f64,
}

impl QueuedJob {
    /// Creates a queued job.
    ///
    /// # Panics
    ///
    /// Panics if `submit_secs` is negative or not finite.
    pub fn new(name: impl Into<String>, model: AppModel, submit_secs: f64) -> Self {
        assert!(
            submit_secs.is_finite() && submit_secs >= 0.0,
            "submission time must be finite and non-negative"
        );
        QueuedJob {
            name: name.into(),
            model,
            submit_secs,
        }
    }
}

/// Scheduling policy for the shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Run jobs in submission order.
    Fifo,
    /// Among the jobs that have arrived, run the one with the shortest
    /// model-predicted runtime first (non-preemptive SPT).
    ShortestPredictedFirst,
}

/// One job's outcome in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// When the job started.
    pub start_secs: f64,
    /// Predicted runtime used by the scheduler.
    pub runtime_secs: f64,
    /// Waiting time (`start − submit`).
    pub wait_secs: f64,
}

impl JobOutcome {
    /// Turnaround time (`wait + runtime`).
    pub fn turnaround_secs(&self) -> f64 {
        self.wait_secs + self.runtime_secs
    }
}

/// A complete schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-job outcomes in execution order.
    pub jobs: Vec<JobOutcome>,
}

impl Schedule {
    /// Mean waiting time across jobs.
    pub fn mean_wait_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.wait_secs).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean turnaround time across jobs.
    pub fn mean_turnaround_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.turnaround_secs()).sum::<f64>() / self.jobs.len() as f64
    }

    /// Completion time of the last job.
    pub fn makespan_secs(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.start_secs + j.runtime_secs)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<16} {:>10} {:>10} {:>10} {:>12}",
            "job", "start", "run (s)", "wait (s)", "turnaround"
        )?;
        for j in &self.jobs {
            writeln!(
                f,
                "  {:<16} {:>10.0} {:>10.0} {:>10.0} {:>12.0}",
                j.name,
                j.start_secs,
                j.runtime_secs,
                j.wait_secs,
                j.turnaround_secs()
            )?;
        }
        writeln!(
            f,
            "  mean wait {:.0}s, mean turnaround {:.0}s, makespan {:.0}s",
            self.mean_wait_secs(),
            self.mean_turnaround_secs(),
            self.makespan_secs()
        )
    }
}

/// Schedules the queue non-preemptively on one cluster described by `env`.
///
/// Runtimes are the model predictions for `env`; the simulator (or the real
/// cluster) provides the ground truth the predictions approximate.
pub fn schedule(jobs: &[QueuedJob], env: &PredictEnv, policy: Policy) -> Schedule {
    let mut pending: Vec<(usize, f64)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (i, j.model.predict(env)))
        .collect();
    // Stable order by submission for FIFO and for arrival tie-breaks.
    pending.sort_by(|a, b| {
        jobs[a.0]
            .submit_secs
            .total_cmp(&jobs[b.0].submit_secs)
            .then(a.0.cmp(&b.0))
    });

    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(jobs.len());
    let mut queue = pending;
    while !queue.is_empty() {
        // Jobs that have arrived by `now`; if none, jump to the next arrival.
        let arrived_end = queue
            .iter()
            .position(|(i, _)| jobs[*i].submit_secs > now)
            .unwrap_or(queue.len());
        let pick_pos = if arrived_end == 0 {
            now = jobs[queue[0].0].submit_secs;
            0
        } else {
            match policy {
                Policy::Fifo => 0,
                Policy::ShortestPredictedFirst => queue[..arrived_end]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                    .map(|(pos, _)| pos)
                    .expect("non-empty arrived set"),
            }
        };
        let (idx, runtime) = queue.remove(pick_pos);
        let job = &jobs[idx];
        let start = now.max(job.submit_secs);
        out.push(JobOutcome {
            name: job.name.clone(),
            start_secs: start,
            runtime_secs: runtime,
            wait_secs: start - job.submit_secs,
        });
        now = start + runtime;
    }
    Schedule { jobs: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageModel;
    use doppio_cluster::HybridConfig;

    fn job(name: &str, t_avg: f64, submit: f64) -> QueuedJob {
        let model = AppModel::new(
            name,
            vec![StageModel {
                name: "s".into(),
                m: 3600,
                t_avg,
                delta_scale: 0.0,
                channels: vec![],
            }],
        );
        QueuedJob::new(name, model, submit)
    }

    fn env() -> PredictEnv {
        PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd)
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let jobs = vec![job("slow", 100.0, 0.0), job("fast", 1.0, 1.0)];
        let s = schedule(&jobs, &env(), Policy::Fifo);
        assert_eq!(s.jobs[0].name, "slow");
        assert_eq!(s.jobs[1].name, "fast");
        assert!(s.jobs[1].wait_secs > 900.0, "fast job waits behind slow");
    }

    #[test]
    fn spt_runs_short_jobs_first() {
        let jobs = vec![
            job("slow", 100.0, 0.0),
            job("fast", 1.0, 0.0),
            job("mid", 10.0, 0.0),
        ];
        let s = schedule(&jobs, &env(), Policy::ShortestPredictedFirst);
        let order: Vec<&str> = s.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(order, vec!["fast", "mid", "slow"]);
    }

    #[test]
    fn spt_never_worse_than_fifo_on_mean_wait() {
        // Exhaustive-ish: several synthetic queues.
        let queues = [
            vec![job("a", 50.0, 0.0), job("b", 5.0, 0.0), job("c", 20.0, 0.0)],
            vec![job("a", 5.0, 0.0), job("b", 50.0, 0.0), job("c", 1.0, 10.0)],
            vec![job("a", 10.0, 0.0), job("b", 10.0, 0.0)],
        ];
        for q in queues {
            let fifo = schedule(&q, &env(), Policy::Fifo);
            let spt = schedule(&q, &env(), Policy::ShortestPredictedFirst);
            assert!(
                spt.mean_wait_secs() <= fifo.mean_wait_secs() + 1e-9,
                "SPT {:.1} vs FIFO {:.1}",
                spt.mean_wait_secs(),
                fifo.mean_wait_secs()
            );
        }
    }

    #[test]
    fn no_job_starts_before_submission() {
        let jobs = vec![job("late", 1.0, 100.0), job("early", 50.0, 0.0)];
        for policy in [Policy::Fifo, Policy::ShortestPredictedFirst] {
            let s = schedule(&jobs, &env(), policy);
            for j in &s.jobs {
                let submit = jobs.iter().find(|q| q.name == j.name).unwrap().submit_secs;
                assert!(j.start_secs >= submit - 1e-9);
                assert!((j.wait_secs - (j.start_secs - submit)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn idle_gap_jumps_to_next_arrival() {
        let jobs = vec![job("a", 10.0, 0.0), job("b", 10.0, 1000.0)];
        let s = schedule(&jobs, &env(), Policy::Fifo);
        assert_eq!(s.jobs[1].start_secs, 1000.0);
        assert_eq!(s.jobs[1].wait_secs, 0.0);
    }

    #[test]
    fn predictions_drive_the_order_per_environment() {
        // A job that is fast on SSD but I/O-bound on HDD can flip the order.
        let io_heavy = {
            let model = AppModel::new(
                "io-heavy",
                vec![StageModel {
                    name: "s".into(),
                    m: 3600,
                    t_avg: 1.0,
                    delta_scale: 0.0,
                    channels: vec![crate::ChannelModel::new(
                        doppio_sparksim::IoChannel::ShuffleRead,
                        doppio_events::Bytes::from_gib(300),
                        doppio_events::Bytes::from_kib(30),
                        Some(doppio_events::Rate::mib_per_sec(60.0)),
                    )],
                }],
            );
            QueuedJob::new("io-heavy", model, 0.0)
        };
        let cpu_heavy = job("cpu-heavy", 30.0, 0.0);
        let jobs = vec![io_heavy, cpu_heavy];
        let ssd = schedule(
            &jobs,
            &PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd),
            Policy::ShortestPredictedFirst,
        );
        let hdd = schedule(
            &jobs,
            &PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd),
            Policy::ShortestPredictedFirst,
        );
        assert_eq!(ssd.jobs[0].name, "io-heavy", "cheap on SSD");
        assert_eq!(
            hdd.jobs[0].name, "cpu-heavy",
            "io-heavy is the long job on HDD"
        );
    }

    #[test]
    fn schedule_display_and_aggregates() {
        let jobs = vec![job("a", 10.0, 0.0), job("b", 20.0, 0.0)];
        let s = schedule(&jobs, &env(), Policy::Fifo);
        assert!(s.to_string().contains("mean wait"));
        assert!(s.makespan_secs() > 0.0);
        assert!(s.mean_turnaround_secs() >= s.mean_wait_secs());
    }
}
