//! The per-stage model: Equation 1.

use std::fmt;

use doppio_events::{Bytes, Rate};
use doppio_sparksim::IoChannel;

use crate::phases::{break_point, turning_point, ExecutionPhase};
use crate::PredictEnv;

/// One I/O channel of a stage: a `(D, RS, δ)` triple plus the per-core
/// throughput cap `T` used for break-point analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    /// Which I/O channel this is.
    pub channel: IoChannel,
    /// Total bytes the stage moves on this channel, cluster-wide (`D`).
    pub total_bytes: Bytes,
    /// Average request size observed via iostat (`RS`).
    pub request_size: Bytes,
    /// Per-core throughput cap (`T`); `None` when unknown (break-point
    /// queries then return `b = 1`).
    pub stream_cap: Option<Rate>,
    /// The constant `δ` of this limit term (serial portion).
    pub delta: f64,
    /// Effective-bandwidth derate: the calibrated ratio between the fio
    /// lookup-table bandwidth and the throughput the channel actually
    /// sustains under its real access pattern (stragglers, placement
    /// imbalance). 1.0 when uncalibrated. This is the multiplicative
    /// analogue of the paper's additive `δ`: measured at the stressed
    /// device, it transfers proportionally to any other device, where an
    /// absolute constant would not.
    pub derate: f64,
}

impl ChannelModel {
    /// A channel with no serial constant and no derate.
    pub fn new(
        channel: IoChannel,
        total_bytes: Bytes,
        request_size: Bytes,
        stream_cap: Option<Rate>,
    ) -> Self {
        ChannelModel {
            channel,
            total_bytes,
            request_size,
            stream_cap,
            delta: 0.0,
            derate: 1.0,
        }
    }

    /// The limit term of Equation 1 for this channel:
    /// `D / (N × BW(RS)) × derate + δ`.
    pub fn limit_secs(&self, env: &PredictEnv) -> f64 {
        let Some(bw) = env.bandwidth(self.channel, self.request_size) else {
            return 0.0; // network is not modelled (paper Section III-B1)
        };
        self.total_bytes.as_f64() / (env.nodes as f64 * bw.as_bytes_per_sec()) * self.derate
            + self.delta
    }

    /// The contention break point `b = BW / T` for this channel in the
    /// given environment (Section IV-A, definition 5).
    pub fn break_point(&self, env: &PredictEnv) -> f64 {
        let Some(bw) = env.bandwidth(self.channel, self.request_size) else {
            return f64::INFINITY;
        };
        match self.stream_cap {
            Some(t) => break_point(bw, t),
            None => 1.0,
        }
    }
}

/// The model of one stage: everything needed to evaluate Equation 1.
#[derive(Debug, Clone, PartialEq)]
pub struct StageModel {
    /// Stage name.
    pub name: String,
    /// Number of tasks (`M`).
    pub m: u64,
    /// Mean task time in seconds with no I/O contention (`t_avg`).
    pub t_avg: f64,
    /// Serial constant of the scaling term (`δ_scale`).
    pub delta_scale: f64,
    /// The stage's I/O channels.
    pub channels: Vec<ChannelModel>,
}

impl StageModel {
    /// The scaling term `⌈M / (N·P)⌉ × t_avg + δ_scale`.
    ///
    /// The paper writes the continuous form `M/(N·P) × t_avg`; tasks run in
    /// whole waves, so we keep the ceiling (the two coincide when
    /// `M ≫ N·P`, which all of the paper's configurations satisfy, and the
    /// discretized form stays accurate for short stages too).
    pub fn t_scale(&self, env: &PredictEnv) -> f64 {
        let waves = (self.m as f64 / (env.nodes as f64 * env.cores as f64)).ceil();
        waves * self.t_avg + self.delta_scale
    }

    /// The combined limit term of one disk: the *sum* of the limit terms of
    /// every channel hitting that disk role.
    ///
    /// This is the one refinement we make to Equation 1 (documented in
    /// DESIGN.md §3.5): the paper keeps separate `t_read_limit` and
    /// `t_write_limit` terms under a max because its stages never stress
    /// reads and writes on the *same* spindle, but a device serves both
    /// from the same time budget — GATK4's SF stage reads 122 GB from and
    /// writes 332 GB to the HDFS disk, and the two serialize. When one
    /// channel dominates, the sum degenerates to the paper's max.
    pub fn role_limit(&self, role: doppio_cluster::DiskRole, env: &PredictEnv) -> f64 {
        self.channels
            .iter()
            .filter(|c| c.channel.disk_role() == Some(role))
            .map(|c| c.limit_secs(env))
            .sum()
    }

    /// Equation 1: `max(t_scale, per-disk limit terms)`.
    pub fn predict(&self, env: &PredictEnv) -> f64 {
        self.t_scale(env)
            .max(self.role_limit(doppio_cluster::DiskRole::Hdfs, env))
            .max(self.role_limit(doppio_cluster::DiskRole::Local, env))
    }

    /// The channel that bounds the stage in this environment, if any: the
    /// largest contributor within the binding disk role, when that role's
    /// limit exceeds the scaling term.
    pub fn bottleneck(&self, env: &PredictEnv) -> Option<&ChannelModel> {
        let t_scale = self.t_scale(env);
        let hdfs = self.role_limit(doppio_cluster::DiskRole::Hdfs, env);
        let local = self.role_limit(doppio_cluster::DiskRole::Local, env);
        let role = if hdfs.max(local) <= t_scale {
            return None;
        } else if hdfs > local {
            doppio_cluster::DiskRole::Hdfs
        } else {
            doppio_cluster::DiskRole::Local
        };
        self.channels
            .iter()
            .filter(|c| c.channel.disk_role() == Some(role))
            .map(|c| (c, c.limit_secs(env)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
    }

    /// The paper's `λ` for a channel: mean task time over mean per-task I/O
    /// time on that channel at its uncontended per-core rate `T`.
    pub fn lambda(&self, ch: &ChannelModel) -> Option<f64> {
        let t = ch.stream_cap?;
        if self.m == 0 || ch.total_bytes.is_zero() {
            return None;
        }
        let io_per_task = ch.total_bytes.as_f64() / self.m as f64 / t.as_bytes_per_sec();
        if io_per_task == 0.0 {
            return None;
        }
        Some(self.t_avg / io_per_task)
    }

    /// The turning point `B = λ·b` for a channel in an environment — the
    /// core count beyond which this channel's I/O becomes the bottleneck.
    pub fn turning_point(&self, ch: &ChannelModel, env: &PredictEnv) -> Option<f64> {
        let lambda = self.lambda(ch)?;
        Some(turning_point(lambda, ch.break_point(env)))
    }

    /// Classifies the stage's execution phase (Figure 6) with respect to
    /// its most constraining channel.
    pub fn phase(&self, env: &PredictEnv) -> ExecutionPhase {
        let p = env.cores as f64;
        let mut phase = ExecutionPhase::NoContention;
        for ch in &self.channels {
            let b = ch.break_point(env);
            let big_b = self.turning_point(ch, env).unwrap_or(f64::INFINITY);
            let this = if p <= b {
                ExecutionPhase::NoContention
            } else if p <= big_b {
                ExecutionPhase::HiddenContention
            } else {
                ExecutionPhase::IoBound
            };
            phase = phase.max(this);
        }
        phase
    }
}

impl fmt::Display for StageModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: M={}, t_avg={:.2}s, δ={:.2}s, {} channels",
            self.name,
            self.m,
            self.t_avg,
            self.delta_scale,
            self.channels.len()
        )
    }
}

impl doppio_engine::Fingerprintable for ChannelModel {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        self.channel.fingerprint_into(fp);
        self.total_bytes.fingerprint_into(fp);
        self.request_size.fingerprint_into(fp);
        self.stream_cap.fingerprint_into(fp);
        fp.write_f64(self.delta);
        fp.write_f64(self.derate);
    }
}

impl doppio_engine::Fingerprintable for StageModel {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_str(&self.name);
        fp.write_u64(self.m);
        fp.write_f64(self.t_avg);
        fp.write_f64(self.delta_scale);
        self.channels.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::HybridConfig;

    fn br_stage() -> StageModel {
        // GATK4 BR per the paper: 334 GB shuffle read in 30 KB segments,
        // T = 60 MB/s, λ = 20.
        let m = 12670u64;
        let t_io = Bytes::from_gib_f64(334.0).as_f64()
            / m as f64
            / Rate::mib_per_sec(60.0).as_bytes_per_sec();
        StageModel {
            name: "BR".into(),
            m,
            t_avg: 20.0 * t_io,
            delta_scale: 0.0,
            channels: vec![ChannelModel {
                channel: IoChannel::ShuffleRead,
                total_bytes: Bytes::from_gib_f64(334.0),
                request_size: Bytes::from_kib(30),
                stream_cap: Some(Rate::mib_per_sec(60.0)),
                delta: 0.0,
                derate: 1.0,
            }],
        }
    }

    #[test]
    fn break_points_match_paper_section_v() {
        let s = br_stage();
        let ch = &s.channels[0];
        let ssd = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        let hdd = PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd);
        // SSD: b = 480/60 = 8; B = λ·b = 160.
        assert!((ch.break_point(&ssd) - 8.0).abs() < 0.1);
        assert!((s.turning_point(ch, &ssd).unwrap() - 160.0).abs() < 2.0);
        // HDD: b = 15/60 < 1 -> "even one core suffers contention".
        assert!(ch.break_point(&hdd) < 1.0);
        let big_b = s.turning_point(ch, &hdd).unwrap();
        assert!(big_b < 6.0, "paper: B = 5 on HDD, got {big_b:.1}");
    }

    #[test]
    fn lambda_matches_construction() {
        let s = br_stage();
        assert!((s.lambda(&s.channels[0]).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_scales_then_saturates() {
        let s = br_stage();
        let env12 = PredictEnv::hybrid(10, 12, HybridConfig::SsdSsd);
        let env36 = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        let t12 = s.predict(&env12);
        let t36 = s.predict(&env36);
        // Wave-discretized: 106 waves at P=12 vs 36 waves at P=36 ≈ 2.94x.
        assert!(
            (t12 / t36 - 3.0).abs() < 0.1,
            "BR scales with P on SSD (B = 160): {:.2}",
            t12 / t36
        );

        // On HDD local the stage is I/O-bound: P does not matter.
        let h12 = s.predict(&PredictEnv::hybrid(10, 12, HybridConfig::SsdHdd));
        let h36 = s.predict(&PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd));
        assert!((h12 - h36).abs() < 1e-9);
        // And equals D / (N × BW(30 KB)).
        let expect = Bytes::from_gib_f64(334.0).as_f64()
            / (10.0 * Rate::mib_per_sec(15.0).as_bytes_per_sec());
        assert!((h36 - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn paper_126_minute_shuffle_read_check() {
        // Section III-C3: 334 GB / 3 nodes / 15 MB/s ≈ 126 min on 2HDD.
        let s = br_stage();
        let env = PredictEnv::hybrid(3, 36, HybridConfig::HddHdd);
        let t = s.predict(&env);
        let mins = t / 60.0;
        assert!(
            (mins - 126.0).abs() < 8.0,
            "BR on 3-node 2HDD = {mins:.0} min"
        );
    }

    #[test]
    fn bottleneck_identification() {
        let s = br_stage();
        let hdd = PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd);
        assert_eq!(s.bottleneck(&hdd).unwrap().channel, IoChannel::ShuffleRead);
        let ssd = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        assert!(
            s.bottleneck(&ssd).is_none(),
            "scaling term dominates on SSD"
        );
    }

    #[test]
    fn phase_classification() {
        use crate::phases::ExecutionPhase::*;
        let s = br_stage();
        assert_eq!(
            s.phase(&PredictEnv::hybrid(10, 6, HybridConfig::SsdSsd)),
            NoContention
        );
        assert_eq!(
            s.phase(&PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd)),
            HiddenContention
        );
        assert_eq!(
            s.phase(&PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd)),
            IoBound
        );
    }

    #[test]
    fn delta_terms_add() {
        let mut s = br_stage();
        s.delta_scale = 10.0;
        s.channels[0].delta = 5.0;
        let ssd = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        let base = br_stage().t_scale(&ssd);
        assert!((s.t_scale(&ssd) - (base + 10.0)).abs() < 1e-9);
        let hdd = PredictEnv::hybrid(10, 36, HybridConfig::SsdHdd);
        let base_limit = br_stage().channels[0].limit_secs(&hdd);
        assert!((s.channels[0].limit_secs(&hdd) - (base_limit + 5.0)).abs() < 1e-9);
    }
}
