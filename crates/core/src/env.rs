//! The prediction environment: cluster shape and devices.

use doppio_events::{Bytes, Rate};
use doppio_sparksim::IoChannel;
use doppio_storage::{DeviceSpec, IoDir};

/// The configuration Equation 1 is evaluated against: node count `N`,
/// executor cores per node `P`, and the devices backing HDFS and the
/// Spark-local directory.
///
/// Environments are cheap to construct, so configuration-space exploration
/// (the paper's Section VI cost study) simply evaluates the same
/// [`crate::AppModel`] against many environments.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictEnv {
    /// Number of worker nodes (`N`).
    pub nodes: usize,
    /// Executor cores per node (`P`).
    pub cores: u32,
    /// Device backing HDFS.
    pub hdfs: DeviceSpec,
    /// Device backing the Spark-local directory.
    pub local: DeviceSpec,
}

impl PredictEnv {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `cores` is zero.
    pub fn new(nodes: usize, cores: u32, hdfs: DeviceSpec, local: DeviceSpec) -> Self {
        assert!(nodes > 0, "environment needs at least one node");
        assert!(cores > 0, "environment needs at least one core per node");
        PredictEnv {
            nodes,
            cores,
            hdfs,
            local,
        }
    }

    /// An environment over one of the paper's Table III hybrid
    /// configurations.
    pub fn hybrid(nodes: usize, cores: u32, config: doppio_cluster::HybridConfig) -> Self {
        Self::new(nodes, cores, config.hdfs_device(), config.local_device())
    }

    /// Effective bandwidth the environment offers a channel at a request
    /// size — the `BW_read` / `BW_write` lookup of Equation 1. Returns
    /// `None` for the network channel, which the model ignores (the paper
    /// argues 10 Gb/s networking is not the bottleneck, Section III-B1).
    pub fn bandwidth(&self, channel: IoChannel, request_size: Bytes) -> Option<Rate> {
        let role = channel.disk_role()?;
        let dev = match role {
            doppio_cluster::DiskRole::Hdfs => &self.hdfs,
            doppio_cluster::DiskRole::Local => &self.local,
        };
        let dir = if channel.is_read() {
            IoDir::Read
        } else {
            IoDir::Write
        };
        Some(dev.bandwidth(dir, request_size))
    }

    /// Returns a copy with a different core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        assert!(cores > 0, "environment needs at least one core per node");
        self.cores = cores;
        self
    }

    /// Returns a copy with a different node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "environment needs at least one node");
        self.nodes = nodes;
        self
    }
}

impl doppio_engine::Fingerprintable for PredictEnv {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_usize(self.nodes);
        fp.write_u32(self.cores);
        self.hdfs.fingerprint_into(fp);
        self.local.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::HybridConfig;
    use doppio_storage::presets;

    #[test]
    fn channel_device_routing() {
        let env = PredictEnv::new(3, 36, presets::ssd_mz7lm(), presets::hdd_wd4000());
        let rs = Bytes::from_kib(30);
        let shuffle = env.bandwidth(IoChannel::ShuffleRead, rs).unwrap();
        let hdfs = env.bandwidth(IoChannel::HdfsRead, rs).unwrap();
        assert!((shuffle.as_mib_per_sec() - 15.0).abs() < 0.1, "local = HDD");
        assert!((hdfs.as_mib_per_sec() - 480.0).abs() < 1.0, "hdfs = SSD");
        assert!(env.bandwidth(IoChannel::NetIn, rs).is_none());
    }

    #[test]
    fn write_channels_use_write_curves() {
        let env = PredictEnv::hybrid(3, 36, HybridConfig::HddHdd);
        let rs = Bytes::from_mib(128);
        let r = env.bandwidth(IoChannel::HdfsRead, rs).unwrap();
        let w = env.bandwidth(IoChannel::HdfsWrite, rs).unwrap();
        assert!(w < r);
    }

    #[test]
    fn builders() {
        let env = PredictEnv::hybrid(3, 36, HybridConfig::SsdSsd)
            .with_cores(12)
            .with_nodes(10);
        assert_eq!(env.cores, 12);
        assert_eq!(env.nodes, 10);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = PredictEnv::hybrid(3, 36, HybridConfig::SsdSsd).with_nodes(0);
    }
}
