//! The three execution phases of Section IV-B (Figure 6).
//!
//! As the per-node core count `P` grows, a stage passes through three
//! regimes relative to an I/O channel with per-core throughput `T`,
//! effective bandwidth `BW` and compute-to-I/O ratio `λ`:
//!
//! 1. `P ≤ b` where `b = BW/T` — no I/O contention; runtime
//!    `M/(N·P) × t_avg`.
//! 2. `b < P ≤ B` where `B = λ·b` — cores contend for bandwidth but the
//!    CPU work of concurrent tasks hides the slower I/O; runtime still
//!    `M/(N·P) × t_avg (+ t_lat)`.
//! 3. `P > B` — I/O is the bottleneck; runtime `D/(N·BW) + t_avg`, and
//!    *adding cores no longer helps*.

use doppio_events::Rate;

/// Which regime of Figure 6 a stage operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecutionPhase {
    /// `P ≤ b`: every stream runs at its full per-core rate `T`.
    NoContention,
    /// `b < P ≤ λ·b`: I/O contention exists but is hidden under CPU work.
    HiddenContention,
    /// `P > λ·b`: the device is saturated; the stage is I/O-bound.
    IoBound,
}

impl std::fmt::Display for ExecutionPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionPhase::NoContention => write!(f, "no-contention (P <= b)"),
            ExecutionPhase::HiddenContention => write!(f, "hidden (b < P <= λ·b)"),
            ExecutionPhase::IoBound => write!(f, "io-bound (P > λ·b)"),
        }
    }
}

/// The break point `b = BW / T` (Section IV-A, definition 5): the number of
/// cores after which streams contend for the device.
pub fn break_point(bw: Rate, t: Rate) -> f64 {
    assert!(
        t.as_bytes_per_sec() > 0.0,
        "per-core rate T must be positive"
    );
    bw / t
}

/// The turning point `B = λ·b` (Section IV-B): the number of cores after
/// which I/O becomes the stage bottleneck.
pub fn turning_point(lambda: f64, b: f64) -> f64 {
    assert!(lambda >= 1.0, "λ = t_task/t_io is at least 1");
    lambda * b
}

/// Classifies `P` against the two thresholds.
pub fn classify(p: f64, b: f64, lambda: f64) -> ExecutionPhase {
    if p <= b {
        ExecutionPhase::NoContention
    } else if p <= turning_point(lambda, b) {
        ExecutionPhase::HiddenContention
    } else {
        ExecutionPhase::IoBound
    }
}

/// The piecewise stage-runtime formula of Section IV-B, for a single-channel
/// stage. Inputs mirror the paper's variable list: `M` tasks over `N` nodes
/// with `P` cores each, mean task time `t_avg` (of which `t_io` is I/O),
/// total data `D`, effective bandwidth `BW`, and per-core rate `T`.
///
/// Used to regenerate Figure 6's example series (`T = 60 MB/s`, `λ = 4`,
/// `BW = 120 MB/s`).
#[allow(clippy::too_many_arguments)]
pub fn piecewise_runtime(
    m: u64,
    n: usize,
    p: u32,
    t_avg: f64,
    t_io: f64,
    d_bytes: f64,
    bw: Rate,
    t: Rate,
) -> f64 {
    let b = break_point(bw, t);
    let lambda = if t_io > 0.0 {
        (t_avg / t_io).max(1.0)
    } else {
        f64::INFINITY
    };
    let scale = m as f64 / (n as f64 * p as f64) * t_avg;
    match classify(p as f64, b, lambda) {
        ExecutionPhase::NoContention | ExecutionPhase::HiddenContention => scale,
        ExecutionPhase::IoBound => d_bytes / (n as f64 * bw.as_bytes_per_sec()) + t_avg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_example_thresholds() {
        // The worked example of Section IV-A: T = 60, BW = 120 => b = 2;
        // λ = 4 => B = 8.
        let b = break_point(Rate::mib_per_sec(120.0), Rate::mib_per_sec(60.0));
        assert_eq!(b, 2.0);
        assert_eq!(turning_point(4.0, b), 8.0);
        assert_eq!(classify(2.0, b, 4.0), ExecutionPhase::NoContention);
        assert_eq!(classify(5.0, b, 4.0), ExecutionPhase::HiddenContention);
        assert_eq!(classify(9.0, b, 4.0), ExecutionPhase::IoBound);
    }

    #[test]
    fn phases_are_ordered() {
        assert!(ExecutionPhase::NoContention < ExecutionPhase::HiddenContention);
        assert!(ExecutionPhase::HiddenContention < ExecutionPhase::IoBound);
    }

    #[test]
    fn piecewise_scales_then_flattens() {
        let bw = Rate::mib_per_sec(120.0);
        let t = Rate::mib_per_sec(60.0);
        // 60 MiB per task at 60 MiB/s = 1 s I/O; λ = 4 => t_avg = 4 s.
        let d_task = 60.0 * 1024.0 * 1024.0;
        let m = 64;
        let d = d_task * m as f64;
        let runtime = |p| piecewise_runtime(m, 1, p, 4.0, 1.0, d, bw, t);
        // Scaling region: halving time when doubling cores.
        assert!((runtime(2) / runtime(4) - 2.0).abs() < 1e-9);
        assert!((runtime(4) / runtime(8) - 2.0).abs() < 1e-9);
        // Beyond B = 8 the curve flattens at D/BW + t_avg.
        let floor = d / bw.as_bytes_per_sec() + 4.0;
        assert!((runtime(16) - floor).abs() < 1e-9);
        assert!((runtime(32) - floor).abs() < 1e-9);
    }

    #[test]
    fn display_labels() {
        assert!(ExecutionPhase::IoBound.to_string().contains("io-bound"));
    }
}
