//! The application-level model: a sum of stage models.

use std::fmt;

use crate::{PredictEnv, StageModel};

/// The model of a whole application: `t_app = Σ t_stage` (Section IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    name: String,
    stages: Vec<StageModel>,
}

impl AppModel {
    /// Builds an application model from per-stage models.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(name: impl Into<String>, stages: Vec<StageModel>) -> Self {
        assert!(
            !stages.is_empty(),
            "an application model needs at least one stage"
        );
        AppModel {
            name: name.into(),
            stages,
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-stage models, in execution order.
    pub fn stages(&self) -> &[StageModel] {
        &self.stages
    }

    /// First stage with the given name.
    pub fn stage(&self, name: &str) -> Option<&StageModel> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Predicted total runtime in seconds.
    pub fn predict(&self, env: &PredictEnv) -> f64 {
        self.stages.iter().map(|s| s.predict(env)).sum()
    }

    /// Predicted runtime of all stages named `name` (iterative apps repeat
    /// stage names).
    pub fn predict_stage(&self, name: &str, env: &PredictEnv) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.predict(env))
            .sum()
    }

    /// Per-stage predictions as `(name, seconds)` rows.
    pub fn breakdown(&self, env: &PredictEnv) -> Vec<(&str, f64)> {
        self.stages
            .iter()
            .map(|s| (s.name.as_str(), s.predict(env)))
            .collect()
    }
}

impl fmt::Display for AppModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model for {} ({} stages)", self.name, self.stages.len())?;
        for s in &self.stages {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

impl doppio_engine::Fingerprintable for AppModel {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_str(&self.name);
        self.stages.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::HybridConfig;
    use doppio_events::Bytes;
    use doppio_sparksim::IoChannel;

    fn stage(name: &str, m: u64, t_avg: f64) -> StageModel {
        StageModel {
            name: name.into(),
            m,
            t_avg,
            delta_scale: 0.0,
            channels: vec![crate::ChannelModel {
                channel: IoChannel::HdfsRead,
                total_bytes: Bytes::from_gib(1),
                request_size: Bytes::from_mib(128),
                stream_cap: None,
                delta: 0.0,
                derate: 1.0,
            }],
        }
    }

    #[test]
    fn total_is_sum_of_stages() {
        let m = AppModel::new("app", vec![stage("a", 360, 1.0), stage("b", 360, 2.0)]);
        let env = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        let total = m.predict(&env);
        let sum: f64 = m.breakdown(&env).iter().map(|(_, t)| t).sum();
        assert!((total - sum).abs() < 1e-12);
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_stage_names_accumulate() {
        let m = AppModel::new(
            "iterative",
            vec![stage("iteration", 360, 1.0), stage("iteration", 360, 1.0)],
        );
        let env = PredictEnv::hybrid(10, 36, HybridConfig::SsdSsd);
        assert!((m.predict_stage("iteration", &env) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lookups() {
        let m = AppModel::new("app", vec![stage("a", 1, 1.0)]);
        assert!(m.stage("a").is_some());
        assert!(m.stage("z").is_none());
        assert_eq!(m.name(), "app");
        assert!(m.to_string().contains("app"));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_model_rejected() {
        let _ = AppModel::new("x", vec![]);
    }
}
