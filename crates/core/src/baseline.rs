//! An Ernest-style baseline performance model.
//!
//! Ernest (Venkataraman et al., NSDI'16) predicts job runtime from a
//! non-negative least-squares fit of
//!
//! ```text
//! t(x) = θ₀ + θ₁·(1/x) + θ₂·log(x) + θ₃·x
//! ```
//!
//! over the parallelism `x` (machines or total cores). The Doppio paper's
//! related-work section points out that such models ignore the I/O impact
//! of different data request sizes, so they cannot distinguish an HDD-
//! backed Spark-local directory from an SSD one. This implementation exists
//! to make that comparison concrete (ablation bench `abl01_ernest`).

use crate::ModelError;

/// Fitted Ernest model.
#[derive(Debug, Clone, PartialEq)]
pub struct ErnestModel {
    theta: [f64; 4],
}

fn features(x: f64) -> [f64; 4] {
    [1.0, 1.0 / x, x.ln(), x]
}

impl ErnestModel {
    /// Fits the model to `(parallelism, runtime-seconds)` samples with
    /// non-negative least squares (projected active-set, as in the paper's
    /// reference).
    ///
    /// # Errors
    ///
    /// Needs at least two samples; returns [`ModelError::SingularFit`] when
    /// the sample matrix is degenerate (e.g. all identical).
    pub fn fit(samples: &[(f64, f64)]) -> Result<ErnestModel, ModelError> {
        if samples.len() < 2 {
            return Err(ModelError::NotEnoughSamples {
                got: samples.len(),
                need: 2,
            });
        }
        // With few samples, restrict the feature set to keep the system
        // overdetermined: serial + parallel terms first, then log, then
        // linear overhead.
        let max_features = samples.len().min(4);
        let mut active: Vec<usize> = (0..max_features).collect();
        loop {
            let theta_active = ols(samples, &active)?;
            if let Some(worst) = theta_active
                .iter()
                .enumerate()
                .filter(|(_, v)| **v < -1e-9)
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
            {
                active.remove(worst);
                if active.is_empty() {
                    return Err(ModelError::SingularFit);
                }
                continue;
            }
            let mut theta = [0.0; 4];
            for (slot, value) in active.iter().zip(&theta_active) {
                theta[*slot] = value.max(0.0);
            }
            return Ok(ErnestModel { theta });
        }
    }

    /// Predicted runtime at parallelism `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not positive.
    pub fn predict(&self, x: f64) -> f64 {
        assert!(x > 0.0, "parallelism must be positive");
        features(x)
            .iter()
            .zip(&self.theta)
            .map(|(f, t)| f * t)
            .sum()
    }

    /// The fitted coefficients `[θ₀, θ₁, θ₂, θ₃]`.
    pub fn coefficients(&self) -> [f64; 4] {
        self.theta
    }
}

/// Ordinary least squares over the selected feature subset via normal
/// equations and Gaussian elimination with partial pivoting.
fn ols(samples: &[(f64, f64)], active: &[usize]) -> Result<Vec<f64>, ModelError> {
    let k = active.len();
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut atb = vec![0.0f64; k];
    for &(x, t) in samples {
        let f = features(x);
        for (i, &fi) in active.iter().enumerate() {
            atb[i] += f[fi] * t;
            for (j, &fj) in active.iter().enumerate() {
                ata[i][j] += f[fi] * f[fj];
            }
        }
    }
    // Tikhonov whisper to keep nearly-collinear systems solvable.
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-12;
    }
    solve(ata, atb)
}

fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, ModelError> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        if a[pivot][col].abs() < 1e-15 {
            return Err(ModelError::SingularFit);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col].clone();
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot_row[col];
            a[row][col..n]
                .iter_mut()
                .zip(&pivot_row[col..n])
                .for_each(|(cell, p)| *cell -= factor * p);
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_amdahl_curve() {
        // t(x) = 10 + 100/x: a pure serial + parallel split.
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&x| (x, 10.0 + 100.0 / x))
            .collect();
        let m = ErnestModel::fit(&samples).unwrap();
        for &(x, t) in &samples {
            assert!((m.predict(x) - t).abs() < 1e-6, "x={x}");
        }
        // Extrapolation stays sane.
        assert!((m.predict(32.0) - (10.0 + 100.0 / 32.0)).abs() < 0.5);
    }

    #[test]
    fn nonnegativity_is_enforced() {
        // A decreasing-then-flat curve that OLS would fit with negative
        // coefficients.
        let samples = vec![
            (1.0, 100.0),
            (2.0, 50.0),
            (4.0, 25.0),
            (8.0, 25.0),
            (16.0, 25.0),
        ];
        let m = ErnestModel::fit(&samples).unwrap();
        for c in m.coefficients() {
            assert!(
                c >= 0.0,
                "coefficients must be non-negative: {:?}",
                m.coefficients()
            );
        }
        // Still a decent fit at the sampled points.
        assert!(m.predict(16.0) > 10.0 && m.predict(16.0) < 40.0);
    }

    #[test]
    fn two_samples_fit_two_features() {
        let m = ErnestModel::fit(&[(1.0, 110.0), (10.0, 20.0)]).unwrap();
        assert!((m.predict(1.0) - 110.0).abs() < 1e-6);
        assert!((m.predict(10.0) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn not_enough_samples_rejected() {
        assert!(matches!(
            ErnestModel::fit(&[(1.0, 1.0)]),
            Err(ModelError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn cannot_see_devices() {
        // The core point of the ablation: Ernest's input is parallelism
        // only, so two runs differing only in disk type produce the same
        // prediction by construction.
        let m = ErnestModel::fit(&[(1.0, 100.0), (2.0, 52.0), (4.0, 28.0)]).unwrap();
        let hdd_prediction = m.predict(8.0);
        let ssd_prediction = m.predict(8.0);
        assert_eq!(hdd_prediction, ssd_prediction);
    }
}
