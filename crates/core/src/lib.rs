//! # The Doppio I/O-aware analytical performance model
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Zhou et al., *Doppio*, ISPASS 2018, Section IV): an analytical model
//! that predicts the runtime of every stage of a Spark application from
//!
//! * the stage's task count `M` and mean task time `t_avg`,
//! * the cluster size `N` and per-node executor cores `P`,
//! * per-I/O-channel data volumes `D` and request sizes `RS`, and
//! * device *effective bandwidth curves* `BW(RS)`.
//!
//! The model is Equation 1 of the paper:
//!
//! ```text
//! t_stage = max(t_scale, t_read_limit, t_write_limit)
//! t_scale       = M / (N·P) × t_avg + δ_scale
//! t_read_limit  = D_read  / (N × BW_read)  + δ_read
//! t_write_limit = D_write / (N × BW_write) + δ_write
//! t_app = Σ t_stage
//! ```
//!
//! with the break-point analysis of Section IV-B: per-core throughput `T`
//! gives a contention break point `b = BW / T`, CPU work hides I/O until
//! `B = λ·b` cores, and beyond that the stage is I/O-bound so more cores do
//! not help.
//!
//! Three entry points:
//!
//! * [`StageModel`] / [`AppModel`] — evaluate Equation 1 against a
//!   [`PredictEnv`] (any `N`, `P`, and device pair).
//! * [`Calibrator`] — the paper's §VI.1 procedure: four profiling runs
//!   (P=1 and P=2 all-SSD; P=16 with an HDD local dir; P=16 with an HDD
//!   HDFS dir) against any [`ProfilePlatform`], deriving every model
//!   constant plus sanity-check warnings.
//! * [`ErnestModel`] — an Ernest-style baseline (NNLS fit of
//!   `θ₀ + θ₁/x + θ₂·log x + θ₃·x`) that ignores request-size-dependent
//!   bandwidth, used to show why I/O-awareness matters.
//!
//! # Example
//!
//! ```
//! use doppio_model::{PredictEnv, StageModel, ChannelModel};
//! use doppio_sparksim::IoChannel;
//! use doppio_storage::presets;
//! use doppio_events::{Bytes, Rate};
//!
//! // A shuffle-read-dominated stage like GATK4's BR.
//! let stage = StageModel {
//!     name: "BR".into(),
//!     m: 12670,
//!     t_avg: 9.0,
//!     delta_scale: 0.0,
//!     channels: vec![ChannelModel::new(
//!         IoChannel::ShuffleRead,
//!         Bytes::from_gib_f64(334.0),
//!         Bytes::from_kib(30),
//!         Some(Rate::mib_per_sec(60.0)),
//!     )],
//! };
//! let ssd = PredictEnv::new(10, 36, presets::ssd_mz7lm(), presets::ssd_mz7lm());
//! let hdd = PredictEnv::new(10, 36, presets::ssd_mz7lm(), presets::hdd_wd4000());
//! // On SSD local dirs the stage scales with cores; on HDD it is I/O-bound.
//! assert!(stage.predict(&hdd) > 3.0 * stage.predict(&ssd));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod baseline;
mod calibrate;
mod env;
mod error;
pub mod phases;
pub mod report;
pub mod scheduler;
mod stage;
pub mod whatif;

pub use app::AppModel;
pub use baseline::ErnestModel;
pub use calibrate::{CalibrationReport, Calibrator, ProfilePlatform, SimPlatform};
pub use env::PredictEnv;
pub use error::ModelError;
pub use stage::{ChannelModel, StageModel};
