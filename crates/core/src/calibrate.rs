//! The four-sample-run calibration procedure of Section VI.1.
//!
//! > "For each application, we can perform four profiling runs to get the
//! > model variables usually under a small number of nodes N (e.g. N = 3)."
//!
//! 1. `P = 1`, SSD for HDFS and Spark-local — I/O is not the bottleneck;
//!    log per-stage time, `M`, `D_read`, `D_write`, request sizes.
//! 2. `P = 2`, same devices — together with run 1 this solves `t_avg` and
//!    `δ_scale` from two instances of `t = M/(N·P)·t_avg + δ_scale`.
//! 3. `P = 16`, HDD Spark-local + SSD HDFS — Spark-local I/O becomes the
//!    bottleneck; fixes `δ` for the local-disk channels.
//! 4. `P = 16`, HDD HDFS + SSD Spark-local — HDFS I/O becomes the
//!    bottleneck; fixes `δ` for the HDFS channels.
//!
//! Each run carries the paper's sanity checks; violations surface as
//! warnings quoting the paper's resample rule ("double the requested SSD
//! size", "shrink the requested HDD size by half").

use doppio_cluster::{ClusterSpec, DiskRole, NodeSpec};
use doppio_engine::Engine;
use doppio_events::Rate;
use doppio_sparksim::{App, AppRun, IoChannel, SimError, Simulation, SparkConf, StageMetrics};
use doppio_storage::DeviceSpec;

use crate::{AppModel, ChannelModel, ModelError, PredictEnv, StageModel};

/// Anything the calibrator can run profiling experiments on.
///
/// The on-prem implementation is [`SimPlatform`]; the cloud crate provides
/// one whose devices are virtual disks with size-dependent bandwidth.
pub trait ProfilePlatform {
    /// Number of worker nodes used for profiling (the paper's small `N`).
    fn nodes(&self) -> usize;

    /// The Spark configuration (per-core stream caps `T` feed break-point
    /// analysis).
    fn conf(&self) -> &SparkConf;

    /// Executes the application with `cores` executor cores per node and
    /// the given devices backing HDFS and Spark-local.
    ///
    /// # Errors
    ///
    /// Propagates simulator planning failures.
    fn run(&self, cores: u32, hdfs: DeviceSpec, local: DeviceSpec) -> Result<AppRun, SimError>;
}

/// A profiling platform backed by the discrete-event Spark simulator.
#[derive(Debug, Clone)]
pub struct SimPlatform {
    app: App,
    template: NodeSpec,
    nodes: usize,
    conf: SparkConf,
}

impl SimPlatform {
    /// Creates a platform running `app` on `nodes` copies of `template`
    /// (whose disks are replaced per profiling run).
    ///
    /// Calibration disables compute noise so the derived constants are
    /// exact; prediction targets may still be noisy runs.
    pub fn new(app: App, template: NodeSpec, nodes: usize, conf: SparkConf) -> Self {
        SimPlatform {
            app,
            template,
            nodes,
            conf: conf.without_noise(),
        }
    }

    /// The application under calibration.
    pub fn app(&self) -> &App {
        &self.app
    }
}

impl ProfilePlatform for SimPlatform {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn conf(&self) -> &SparkConf {
        &self.conf
    }

    fn run(&self, cores: u32, hdfs: DeviceSpec, local: DeviceSpec) -> Result<AppRun, SimError> {
        let node = self
            .template
            .clone()
            .with_disk(DiskRole::Hdfs, hdfs)
            .with_disk(DiskRole::Local, local);
        let cluster = ClusterSpec::homogeneous(self.nodes, node);
        Simulation::with_conf(cluster, self.conf.clone().with_cores(cores)).run(&self.app)
    }
}

/// The §VI.1 calibrator.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Fast device used for the baseline runs (paper: 500 GB SSD PD).
    pub ssd: DeviceSpec,
    /// Slow device used for the stress runs (paper: 200 GB HDD PD).
    pub hdd: DeviceSpec,
    /// Core count of the stress runs (paper: 16, per the HCloud guidance).
    pub stress_cores: u32,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            ssd: doppio_storage::presets::ssd_mz7lm(),
            hdd: doppio_storage::presets::hdd_wd4000(),
            stress_cores: 16,
        }
    }
}

/// The outcome of calibration: the model plus diagnostics.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// The calibrated application model.
    pub model: AppModel,
    /// Sanity-check findings (empty when all checks passed).
    pub warnings: Vec<String>,
    /// Total runtimes of the four sample runs, in seconds.
    pub sample_run_secs: [f64; 4],
}

impl Calibrator {
    /// Runs the four sample runs on `platform` and derives the model.
    ///
    /// Runs serially; see [`Calibrator::calibrate_with`] to execute the
    /// four profiling runs on worker threads.
    ///
    /// # Errors
    ///
    /// Fails if a profiling run fails or the runs disagree on the stage
    /// list.
    pub fn calibrate(
        &self,
        platform: &(impl ProfilePlatform + Sync),
        app_name: &str,
    ) -> Result<CalibrationReport, ModelError> {
        self.calibrate_with(platform, app_name, &Engine::serial())
    }

    /// [`Calibrator::calibrate`] with the four sample runs fanned out over
    /// `engine`. The runs are mutually independent (each builds its own
    /// cluster and simulation), and each is internally deterministic, so
    /// the derived model is identical at any thread count.
    ///
    /// # Errors
    ///
    /// Fails if a profiling run fails or the runs disagree on the stage
    /// list.
    pub fn calibrate_with(
        &self,
        platform: &(impl ProfilePlatform + Sync),
        app_name: &str,
        engine: &Engine,
    ) -> Result<CalibrationReport, ModelError> {
        let specs = [
            (1, &self.ssd, &self.ssd),
            (2, &self.ssd, &self.ssd),
            (self.stress_cores, &self.ssd, &self.hdd),
            (self.stress_cores, &self.hdd, &self.ssd),
        ];
        let results = engine.par_map(&specs, |&(cores, hdfs, local)| {
            platform.run(cores, hdfs.clone(), local.clone())
        });
        let got = results.len();
        // Surface failures in the paper's run order regardless of which
        // worker hit one first, naming the offending run.
        let mut runs = Vec::with_capacity(4);
        for (i, r) in results.into_iter().enumerate() {
            runs.push(r.map_err(|e| ModelError::SampleRunFailed {
                run: self.run_label(i + 1),
                source: e,
            })?);
        }
        let mut it = runs.into_iter();
        let (Some(run1), Some(run2), Some(run3), Some(run4)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            return Err(ModelError::NotEnoughSamples { got, need: 4 });
        };

        let s = run1.stages().len();
        if s == 0 {
            return Err(ModelError::NoStages);
        }
        for (i, r) in [&run2, &run3, &run4].into_iter().enumerate() {
            if r.stages().len() != s {
                return Err(ModelError::StageMismatch {
                    run: self.run_label(i + 2),
                    expected: s,
                    got: r.stages().len(),
                });
            }
        }
        // Four identical runs mean the platform ignored the calibration
        // knobs (cores, devices): there is no signal to fit from.
        if run2 == run1 && run3 == run1 && run4 == run1 {
            return Err(ModelError::DuplicateSampleRuns {
                run_a: self.run_label(1),
                run_b: self.run_label(2),
            });
        }

        let n = platform.nodes();
        let conf = platform.conf();
        let mut warnings = Vec::new();
        let mut stages = Vec::with_capacity(s);
        for i in 0..s {
            stages.push(self.calibrate_stage(
                n,
                conf,
                &run1.stages()[i],
                &run2.stages()[i],
                &run3.stages()[i],
                &run4.stages()[i],
                &mut warnings,
            )?);
        }

        Ok(CalibrationReport {
            model: AppModel::new(app_name, stages),
            warnings,
            sample_run_secs: [
                run1.total_time().as_secs(),
                run2.total_time().as_secs(),
                run3.total_time().as_secs(),
                run4.total_time().as_secs(),
            ],
        })
    }

    /// Human identity of sample run `i` (1-based) in the §VI.1 recipe,
    /// so error messages name the offending run instead of a bare index.
    fn run_label(&self, i: usize) -> String {
        let (cores, hdfs, local) = match i {
            1 => (1, &self.ssd, &self.ssd),
            2 => (2, &self.ssd, &self.ssd),
            3 => (self.stress_cores, &self.ssd, &self.hdd),
            _ => (self.stress_cores, &self.hdd, &self.ssd),
        };
        format!(
            "sample run {i} of 4 (P={cores}, {} hdfs / {} local)",
            hdfs.name(),
            local.name()
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn calibrate_stage(
        &self,
        n: usize,
        conf: &SparkConf,
        s1: &StageMetrics,
        s2: &StageMetrics,
        s3: &StageMetrics,
        s4: &StageMetrics,
        warnings: &mut Vec<String>,
    ) -> Result<StageModel, ModelError> {
        let m = s1.tasks.count as u64;
        if m == 0 {
            return Err(ModelError::EmptyStage {
                stage: s1.name.clone(),
                run: self.run_label(1),
            });
        }
        let t1 = s1.duration.as_secs();
        let t2 = s2.duration.as_secs();

        // Two-run algebra in wave units: t = ⌈M/(N·P)⌉·t_avg + δ. Solving in
        // whole waves keeps short stages honest — the continuous form
        // attributes wave-quantization residue to a phantom δ_scale that
        // then pollutes predictions at other P.
        let w1 = (m as f64 / n as f64).ceil();
        let w2 = (m as f64 / (2.0 * n as f64)).ceil();
        let mut t_avg = if w1 > w2 { (t1 - t2) / (w1 - w2) } else { 0.0 };
        let mut delta_scale = t1 - w1 * t_avg;
        if !(t_avg.is_finite() && t_avg > 0.0) {
            warnings.push(format!(
                "stage '{}': P=1/P=2 runs do not scale (t1={t1:.2}s, t2={t2:.2}s); \
                 falling back to the measured mean task time — per the paper, double \
                 the requested SSD size and re-sample",
                s1.name
            ));
            t_avg = s1.tasks.avg_secs;
            delta_scale = (t1 - w1 * t_avg).max(0.0);
        }
        delta_scale = delta_scale.max(0.0);

        // Channels and request sizes from the P=1 run.
        let mut channels = Vec::new();
        for ch in IoChannel::DISK_CHANNELS {
            let stats = s1.channel(ch);
            if stats.bytes.is_zero() {
                continue;
            }
            // A non-zero channel always carries requests in simulator
            // output, but custom `ProfilePlatform`s answer here too —
            // a structured error beats an `expect` panic.
            let Some(rs) = stats.avg_request_size() else {
                return Err(ModelError::NoRequests {
                    stage: s1.name.clone(),
                    channel: ch,
                    run: self.run_label(1),
                });
            };
            channels.push(ChannelModel {
                channel: ch,
                total_bytes: stats.bytes,
                request_size: rs,
                stream_cap: Some(stream_cap(conf, ch)),
                delta: 0.0,
                derate: 1.0,
            });
        }

        // Sanity check of run 1: I/O must not be the bottleneck.
        let env1 = PredictEnv::new(n, 1, self.ssd.clone(), self.ssd.clone());
        for ch in &channels {
            let limit = ch.limit_secs(&env1);
            if limit > t1 {
                warnings.push(format!(
                    "stage '{}': {} is already a bottleneck at P=1 on SSD \
                     (limit {limit:.1}s > stage {t1:.1}s) — per the paper, double the \
                     requested SSD size and re-sample",
                    s1.name, ch.channel
                ));
            }
        }

        // Runs 3 and 4: δ for local / HDFS channels respectively.
        let scale16 =
            (m as f64 / (n as f64 * self.stress_cores as f64)).ceil() * t_avg + delta_scale;
        for (run_metrics, role, env) in [
            (
                s3,
                DiskRole::Local,
                PredictEnv::new(n, self.stress_cores, self.ssd.clone(), self.hdd.clone()),
            ),
            (
                s4,
                DiskRole::Hdfs,
                PredictEnv::new(n, self.stress_cores, self.hdd.clone(), self.ssd.clone()),
            ),
        ] {
            let t_obs = run_metrics.duration.as_secs();
            // The stressed disk's combined limit is the sum over its
            // channels (reads and writes share the spindle); the residual
            // serial time goes to the largest contributor's δ.
            let mut role_limit = 0.0;
            let mut best: Option<(usize, f64)> = None;
            for (idx, ch) in channels.iter().enumerate() {
                if ch.channel.disk_role() != Some(role) {
                    continue;
                }
                let limit = ch.limit_secs(&env);
                role_limit += limit;
                if best.map(|(_, l)| limit > l).unwrap_or(true) {
                    best = Some((idx, limit));
                }
            }
            if let Some((idx, _)) = best {
                if role_limit > scale16 {
                    // The disk is genuinely the bottleneck. The observed
                    // excess over the lookup-table limit is sustained-
                    // throughput loss (stragglers, placement imbalance): it
                    // scales with how long the I/O takes, so calibrate it as
                    // a multiplicative derate on the role's channels; only
                    // an implausibly large excess (> 1.5x) spills into the
                    // additive δ of the dominant channel.
                    let ratio = (t_obs / role_limit).clamp(1.0, 1.5);
                    for ch in channels.iter_mut() {
                        if ch.channel.disk_role() == Some(role) {
                            ch.derate = ratio;
                        }
                    }
                    channels[idx].delta = (t_obs - role_limit * ratio).max(0.0);
                } else if role_limit > 0.25 * scale16 {
                    // Near-bottleneck: leave δ at zero silently.
                } else {
                    warnings.push(format!(
                        "stage '{}': {} I/O is far from the bottleneck at P={} on HDD \
                         (limit {role_limit:.1}s vs scale {scale16:.1}s) — per the paper, shrink \
                         the requested HDD size by half and re-sample",
                        run_metrics.name, role, self.stress_cores
                    ));
                }
            }
        }

        Ok(StageModel {
            name: s1.name.clone(),
            m,
            t_avg,
            delta_scale,
            channels,
        })
    }
}

/// The per-core throughput cap (`T`) the Spark configuration imposes on a
/// channel.
fn stream_cap(conf: &SparkConf, ch: IoChannel) -> Rate {
    match ch {
        IoChannel::HdfsRead => conf.hdfs_read_cap,
        IoChannel::HdfsWrite => conf.hdfs_write_cap,
        IoChannel::ShuffleRead => conf.shuffle_read_cap,
        IoChannel::ShuffleWrite => conf.shuffle_write_cap,
        IoChannel::PersistRead | IoChannel::PersistWrite => conf.persist_cap,
        IoChannel::NetIn => Rate::gbit_per_sec(10.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::presets::paper_node;
    use doppio_cluster::HybridConfig;
    use doppio_events::Bytes;
    use doppio_sparksim::{AppBuilder, Cost, ShuffleSpec};

    fn platform(app: App) -> SimPlatform {
        SimPlatform::new(
            app,
            paper_node(36, HybridConfig::SsdSsd),
            3,
            SparkConf::paper(),
        )
    }

    fn shuffle_heavy_app() -> App {
        let mut b = AppBuilder::new("t");
        let src = b.hdfs_source("in", "/in", Bytes::from_gib(8));
        let sh = b.group_by_key(
            src,
            "group",
            ShuffleSpec::target_reducer_bytes(Bytes::from_mib(27)),
            Cost::for_lambda(5.0, doppio_events::Rate::mib_per_sec(60.0)),
            1.0,
        );
        b.count(sh, "reduce", Cost::ZERO);
        b.build().unwrap()
    }

    #[test]
    fn calibration_recovers_stage_structure() {
        let p = platform(shuffle_heavy_app());
        let report = Calibrator::default().calibrate(&p, "t").unwrap();
        let model = &report.model;
        assert_eq!(model.stages().len(), 2);
        let map = model.stage("group").unwrap();
        assert_eq!(map.m, 64); // 8 GiB / 128 MiB
        assert!(map
            .channels
            .iter()
            .any(|c| c.channel == IoChannel::HdfsRead && c.total_bytes == Bytes::from_gib(8)));
        assert!(map
            .channels
            .iter()
            .any(|c| c.channel == IoChannel::ShuffleWrite && c.total_bytes == Bytes::from_gib(8)));
        let reduce = model.stage("reduce").unwrap();
        let sh = reduce
            .channels
            .iter()
            .find(|c| c.channel == IoChannel::ShuffleRead)
            .unwrap();
        // Per-reducer integer division loses a few bytes of the 8 GiB total.
        let diff = Bytes::from_gib(8).as_f64() - sh.total_bytes.as_f64();
        assert!(
            diff.abs() < 1024.0 * 1024.0,
            "shuffle read total = {}",
            sh.total_bytes
        );
        // Segment size D/(M·R): 8 GiB over 64 maps x ~304 reducers ≈ 430 KB.
        assert!(sh.request_size < Bytes::from_mib(1));
        assert!(report.sample_run_secs.iter().all(|t| *t > 0.0));
    }

    #[test]
    fn calibrated_model_predicts_unseen_config() {
        // Calibrate at N=3 and predict a 2SSD N=3 P=8 run within 15%.
        let p = platform(shuffle_heavy_app());
        let report = Calibrator::default().calibrate(&p, "t").unwrap();
        let run = p
            .run(
                8,
                doppio_storage::presets::ssd_mz7lm(),
                doppio_storage::presets::ssd_mz7lm(),
            )
            .unwrap();
        let env = PredictEnv::hybrid(3, 8, HybridConfig::SsdSsd);
        let predicted = report.model.predict(&env);
        let measured = run.total_time().as_secs();
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.15,
            "predicted {predicted:.1}s vs measured {measured:.1}s ({:.1}%)",
            err * 100.0
        );
    }

    #[test]
    fn calibrated_model_predicts_hdd_local_config() {
        let p = platform(shuffle_heavy_app());
        let report = Calibrator::default().calibrate(&p, "t").unwrap();
        let run = p
            .run(
                16,
                doppio_storage::presets::ssd_mz7lm(),
                doppio_storage::presets::hdd_wd4000(),
            )
            .unwrap();
        let env = PredictEnv::hybrid(3, 16, HybridConfig::SsdHdd);
        let predicted = report.model.predict(&env);
        let measured = run.total_time().as_secs();
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.1,
            "predicted {predicted:.1}s vs measured {measured:.1}s ({:.1}%)",
            err * 100.0
        );
    }

    /// A platform that replays one pre-baked run regardless of the
    /// requested cores or devices — degenerate profiling input.
    struct ConstantPlatform {
        run: AppRun,
        conf: SparkConf,
    }

    impl ProfilePlatform for ConstantPlatform {
        fn nodes(&self) -> usize {
            3
        }
        fn conf(&self) -> &SparkConf {
            &self.conf
        }
        fn run(
            &self,
            _cores: u32,
            _hdfs: DeviceSpec,
            _local: DeviceSpec,
        ) -> Result<AppRun, SimError> {
            Ok(self.run.clone())
        }
    }

    #[test]
    fn duplicate_sample_runs_are_a_structured_error() {
        let p = platform(shuffle_heavy_app());
        let baked = p
            .run(
                1,
                doppio_storage::presets::ssd_mz7lm(),
                doppio_storage::presets::ssd_mz7lm(),
            )
            .unwrap();
        let cp = ConstantPlatform {
            run: baked,
            conf: SparkConf::paper(),
        };
        let err = Calibrator::default().calibrate(&cp, "t").unwrap_err();
        assert!(
            matches!(err, ModelError::DuplicateSampleRuns { .. }),
            "got {err:?}"
        );
        assert!(
            err.to_string().contains("sample run 1 of 4 (P=1,"),
            "names the reference run: {err}"
        );
    }

    #[test]
    fn zero_byte_source_fails_with_named_run_not_a_panic() {
        let mut b = AppBuilder::new("empty");
        let src = b.hdfs_source("in", "/in", Bytes::new(0));
        b.count(src, "crunch", Cost::ZERO);
        let p = platform(b.build().unwrap());
        let err = Calibrator::default().calibrate(&p, "empty").unwrap_err();
        let ModelError::SampleRunFailed { run, .. } = &err else {
            panic!("expected SampleRunFailed, got {err:?}");
        };
        assert!(run.contains("sample run 1 of 4"), "run label: {run}");
        assert!(
            err.to_string().contains("P=1") && err.to_string().contains("hdfs"),
            "message names the run, not a bare index: {err}"
        );
    }

    #[test]
    fn recalibration_reproduces_the_model_bitwise() {
        // Same platform, serial vs 4-way parallel profiling: every fitted
        // coefficient must come back bit-identical.
        let p = platform(shuffle_heavy_app());
        let a = Calibrator::default().calibrate(&p, "t").unwrap().model;
        let b = Calibrator::default()
            .calibrate_with(&p, "t", &Engine::with_jobs(4))
            .unwrap()
            .model;
        assert_eq!(a.stages().len(), b.stages().len());
        for (sa, sb) in a.stages().iter().zip(b.stages()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.m, sb.m);
            assert_eq!(sa.t_avg.to_bits(), sb.t_avg.to_bits(), "{}", sa.name);
            assert_eq!(
                sa.delta_scale.to_bits(),
                sb.delta_scale.to_bits(),
                "{}",
                sa.name
            );
            assert_eq!(sa.channels.len(), sb.channels.len());
            for (ca, cb) in sa.channels.iter().zip(&sb.channels) {
                assert_eq!(ca.channel, cb.channel);
                assert_eq!(ca.total_bytes, cb.total_bytes);
                assert_eq!(ca.delta.to_bits(), cb.delta.to_bits());
                assert_eq!(ca.derate.to_bits(), cb.derate.to_bits());
            }
        }
    }

    #[test]
    fn compute_bound_app_has_no_io_warnings_and_scales() {
        let mut b = AppBuilder::new("cpu");
        let src = b.hdfs_source("in", "/in", Bytes::from_gib(8));
        b.count(src, "crunch", Cost::per_mib(0.5));
        let app = b.build().unwrap();
        let p = platform(app);
        let report = Calibrator::default().calibrate(&p, "cpu").unwrap();
        let st = report.model.stage("crunch").unwrap();
        assert!(st.t_avg > 0.0);
        // t_avg should be ~64 s (128 MiB x 0.5 s/MiB).
        assert!((st.t_avg - 64.0).abs() < 5.0, "t_avg = {}", st.t_avg);
    }
}
