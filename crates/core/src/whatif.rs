//! Structured what-if sweeps over a calibrated model.
//!
//! Once Equation 1 is calibrated, answering "what if we double the cores /
//! add nodes / buy SSDs?" is a function evaluation. This module packages
//! the common sweeps as typed series with a text renderer, so tools and
//! schedulers don't each reinvent the loop (the `whatif_scaling` example
//! and the CLI sit on top of it).
//!
//! Each sweep point is an independent model evaluation, so the `_with`
//! variants fan the points out over a [`doppio_engine::Engine`]; the
//! plain entry points run serially and produce identical series.

use std::fmt;

use doppio_engine::Engine;

/// Batch width for sweep evaluations. A sweep point is one closed-form
/// model evaluation — microseconds of work — so the `_with` variants hand
/// workers [`SWEEP_BATCH`] points at a time rather than paying per-point
/// dispatch. The series is identical at any width.
const SWEEP_BATCH: usize = 16;
use doppio_cluster::StorageProfile;
use doppio_events::Bytes;
use doppio_storage::{BandwidthCurve, DeviceSpec, IoDir};

use crate::{AppModel, PredictEnv};

/// One point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Label of the swept value ("P=12", "N=8", "local=SSD"…).
    pub label: String,
    /// Predicted total runtime in seconds.
    pub runtime_secs: f64,
}

/// A titled series of predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// What was swept.
    pub title: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// The point with the lowest runtime.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn best(&self) -> &SweepPoint {
        self.points
            .iter()
            .min_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs))
            .expect("sweep has points")
    }

    /// The marginal speed-up of each step over its predecessor.
    pub fn marginal_gains(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| w[0].runtime_secs / w[1].runtime_secs)
            .collect()
    }

    /// Index of the first step whose marginal gain drops below
    /// `threshold` (e.g. 1.05 = "less than 5% better") — the knee where
    /// buying more of this resource stops paying. `None` if every step
    /// keeps paying.
    pub fn knee(&self, threshold: f64) -> Option<usize> {
        self.marginal_gains().iter().position(|g| *g < threshold)
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.title)?;
        let mut prev: Option<f64> = None;
        for p in &self.points {
            let gain = prev
                .map(|x| format!("{:+.0}%", (x / p.runtime_secs - 1.0) * 100.0))
                .unwrap_or_else(|| "-".into());
            writeln!(
                f,
                "  {:<16} {:>9.1} min {:>8}",
                p.label,
                p.runtime_secs / 60.0,
                gain
            )?;
            prev = Some(p.runtime_secs);
        }
        Ok(())
    }
}

/// Sweeps executor cores per node.
pub fn cores_sweep(model: &AppModel, base: &PredictEnv, cores: &[u32]) -> Sweep {
    cores_sweep_with(model, base, cores, &Engine::serial())
}

/// [`cores_sweep`] with the points fanned out over `engine`.
pub fn cores_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    cores: &[u32],
    engine: &Engine,
) -> Sweep {
    Sweep {
        title: format!("runtime vs cores per node (N={})", base.nodes),
        points: engine.par_map_batched(cores, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|&p| SweepPoint {
                    label: format!("P={p}"),
                    runtime_secs: model.predict(&base.clone().with_cores(p)),
                })
                .collect()
        }),
    }
}

/// Sweeps the worker count.
pub fn nodes_sweep(model: &AppModel, base: &PredictEnv, nodes: &[usize]) -> Sweep {
    nodes_sweep_with(model, base, nodes, &Engine::serial())
}

/// [`nodes_sweep`] with the points fanned out over `engine`.
pub fn nodes_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    nodes: &[usize],
    engine: &Engine,
) -> Sweep {
    Sweep {
        title: format!("runtime vs worker count (P={})", base.cores),
        points: engine.par_map_batched(nodes, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|&n| SweepPoint {
                    label: format!("N={n}"),
                    runtime_secs: model.predict(&base.clone().with_nodes(n)),
                })
                .collect()
        }),
    }
}

/// Compares Spark-local device choices at a fixed cluster shape.
pub fn local_device_sweep(model: &AppModel, base: &PredictEnv, devices: &[DeviceSpec]) -> Sweep {
    local_device_sweep_with(model, base, devices, &Engine::serial())
}

/// [`local_device_sweep`] with the points fanned out over `engine`.
pub fn local_device_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    devices: &[DeviceSpec],
    engine: &Engine,
) -> Sweep {
    Sweep {
        title: format!(
            "runtime vs Spark-local device (N={}, P={})",
            base.nodes, base.cores
        ),
        points: engine.par_map_batched(devices, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|d| {
                    let mut env = base.clone();
                    env.local = d.clone();
                    SweepPoint {
                        label: d.name().to_string(),
                        runtime_secs: model.predict(&env),
                    }
                })
                .collect()
        }),
    }
}

/// Expected runtime inflation factor under a per-task failure probability.
///
/// Models Spark's retry mechanism analytically: a task that fails with
/// probability `rate` is re-attempted up to `max_failures` times, and each
/// failed attempt wastes `at_fraction` of a task duration before the retry
/// starts (the point in its life where the fault fires). The expected extra
/// task-time per task is then a truncated geometric series, so the whole
/// run inflates by
///
/// ```text
/// 1 + at_fraction * (rate + rate^2 + ... + rate^(max_failures - 1))
/// ```
///
/// This is a lower bound on the simulated inflation — it prices the wasted
/// attempt-time but not the scheduling gaps retries create at stage tails —
/// so expect the simulator to come in slightly above it. `rate` is clamped
/// to `[0, 0.99]` and `at_fraction` to `[0, 1]`.
pub fn failure_inflation(rate: f64, at_fraction: f64, max_failures: u32) -> f64 {
    let r = rate.clamp(0.0, 0.99);
    let a = at_fraction.clamp(0.0, 1.0);
    let mut wasted = 0.0;
    let mut rk = 1.0;
    for _ in 1..max_failures {
        rk *= r;
        wasted += rk;
    }
    1.0 + a * wasted
}

/// Sweeps the per-task failure rate, scaling the model's fault-free
/// prediction by [`failure_inflation`].
pub fn failure_sweep(
    model: &AppModel,
    base: &PredictEnv,
    rates: &[f64],
    at_fraction: f64,
    max_failures: u32,
) -> Sweep {
    failure_sweep_with(
        model,
        base,
        rates,
        at_fraction,
        max_failures,
        &Engine::serial(),
    )
}

/// [`failure_sweep`] with the points fanned out over `engine`.
pub fn failure_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    rates: &[f64],
    at_fraction: f64,
    max_failures: u32,
    engine: &Engine,
) -> Sweep {
    let clean = model.predict(base);
    Sweep {
        title: format!(
            "runtime vs task failure rate (N={}, P={}, maxFailures={})",
            base.nodes, base.cores, max_failures
        ),
        points: engine.par_map_batched(rates, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|&r| SweepPoint {
                    label: format!("f={:.0}%", r * 100.0),
                    runtime_secs: clean * failure_inflation(r, at_fraction, max_failures),
                })
                .collect()
        }),
    }
}

/// Per-node effective HDFS device under a storage profile at hit ratio
/// `h`: hits run at the baseline node-local device's speed; misses share
/// the remote tier's aggregate bandwidth with the other `nodes - 1`
/// readers. At every request size the blend is harmonic,
/// `1 / (h / BW_local + (1 - h) / BW_remote)`, which is exact when hit
/// and miss bytes interleave proportionally (they do — the planner splits
/// each block deterministically by `h`, DESIGN.md §3.10).
pub fn tier_effective_device(
    base: &DeviceSpec,
    profile: &StorageProfile,
    nodes: usize,
    h: f64,
) -> DeviceSpec {
    let Some(remote) = profile.remote_device() else {
        return base.clone();
    };
    let share = 1.0 / nodes.max(1) as f64;
    let h = h.clamp(0.0, 1.0);
    let blend = |dir: IoDir| {
        let points: Vec<_> = base
            .curve(dir)
            .points()
            .map(|(rs, local_bw)| {
                let remote_bw = remote.bandwidth(dir, rs) * share;
                let secs_per_byte =
                    h / local_bw.as_bytes_per_sec() + (1.0 - h) / remote_bw.as_bytes_per_sec();
                (rs, doppio_events::Rate::bytes_per_sec(1.0 / secs_per_byte))
            })
            .collect();
        BandwidthCurve::from_points(&points)
    };
    DeviceSpec::new(
        format!("{}@h={h:.2}", profile.name()),
        blend(IoDir::Read),
        blend(IoDir::Write),
    )
}

/// Sweeps the per-node cache capacity in front of a remote tier: the
/// paper-style knee curve answering "how much cache before diminishing
/// returns?". Hit ratio is the working-set model of DESIGN.md §3.10
/// (`min(1, capacity · N / working_set)`); each point re-evaluates the
/// calibrated model against the blended effective device.
pub fn cache_sweep(
    model: &AppModel,
    base: &PredictEnv,
    profile: &StorageProfile,
    working_set: Bytes,
    capacities: &[Bytes],
) -> Sweep {
    cache_sweep_with(
        model,
        base,
        profile,
        working_set,
        capacities,
        &Engine::serial(),
    )
}

/// [`cache_sweep`] with the points fanned out over `engine`.
pub fn cache_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    profile: &StorageProfile,
    working_set: Bytes,
    capacities: &[Bytes],
    engine: &Engine,
) -> Sweep {
    Sweep {
        title: format!(
            "runtime vs per-node cache in front of {} (N={}, P={}, ws={})",
            profile.name(),
            base.nodes,
            base.cores,
            working_set
        ),
        points: engine.par_map_batched(capacities, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|&cap| {
                    let h = doppio_cluster::hit_ratio(working_set, cap * base.nodes as u64);
                    let mut env = base.clone();
                    env.hdfs = tier_effective_device(&base.hdfs, profile, base.nodes, h);
                    SweepPoint {
                        label: format!("C={cap}"),
                        runtime_secs: model.predict(&env),
                    }
                })
                .collect()
        }),
    }
}

/// Compares storage profiles (node-local vs object store vs cached vs
/// parallel FS) at a fixed cluster shape. Cached profiles use their own
/// capacity and the given working set for the hit ratio; the baseline
/// `Local` point is the unmodified environment.
pub fn storage_sweep(
    model: &AppModel,
    base: &PredictEnv,
    profiles: &[StorageProfile],
    working_set: Bytes,
) -> Sweep {
    storage_sweep_with(model, base, profiles, working_set, &Engine::serial())
}

/// [`storage_sweep`] with the points fanned out over `engine`.
pub fn storage_sweep_with(
    model: &AppModel,
    base: &PredictEnv,
    profiles: &[StorageProfile],
    working_set: Bytes,
    engine: &Engine,
) -> Sweep {
    Sweep {
        title: format!(
            "runtime vs storage tier (N={}, P={}, ws={})",
            base.nodes, base.cores, working_set
        ),
        points: engine.par_map_batched(profiles, SWEEP_BATCH, |batch| {
            batch
                .iter()
                .map(|profile| {
                    let h = profile.cache_hit_ratio(working_set, base.nodes);
                    let mut env = base.clone();
                    env.hdfs = tier_effective_device(&base.hdfs, profile, base.nodes, h);
                    SweepPoint {
                        label: profile.name().to_string(),
                        runtime_secs: model.predict(&env),
                    }
                })
                .collect()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelModel, StageModel};
    use doppio_cluster::HybridConfig;
    use doppio_events::{Bytes, Rate};
    use doppio_sparksim::IoChannel;
    use doppio_storage::presets;

    fn model() -> AppModel {
        AppModel::new(
            "m",
            vec![StageModel {
                name: "s".into(),
                m: 14400,
                t_avg: 8.0,
                delta_scale: 0.0,
                channels: vec![ChannelModel::new(
                    IoChannel::ShuffleRead,
                    Bytes::from_gib(300),
                    Bytes::from_kib(30),
                    Some(Rate::mib_per_sec(60.0)),
                )],
            }],
        )
    }

    #[test]
    fn cores_sweep_finds_the_turning_point() {
        let m = model();
        let base = PredictEnv::hybrid(10, 8, HybridConfig::SsdSsd);
        let sweep = cores_sweep(&m, &base, &[8, 16, 32, 64, 128, 256, 512, 1024]);
        // Scaling keeps paying until the shuffle-read limit term
        // (300 GiB / (10 x 480 MiB/s) = 64 s) binds, past which extra cores
        // buy nothing — the knee.
        let knee = sweep.knee(1.10).expect("there is a knee");
        assert!(knee >= 4, "still scaling at 128 cores: knee index = {knee}");
        let best = sweep.best().runtime_secs;
        assert!(
            (best - 64.0).abs() < 2.0,
            "floor at the limit term: {best:.1}"
        );
        assert!(sweep.to_string().contains("P=128"));
    }

    #[test]
    fn nodes_sweep_monotone() {
        let m = model();
        let base = PredictEnv::hybrid(2, 16, HybridConfig::SsdHdd);
        let sweep = nodes_sweep(&m, &base, &[2, 4, 8, 16]);
        let runtimes: Vec<f64> = sweep.points.iter().map(|p| p.runtime_secs).collect();
        for w in runtimes.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "adding nodes helps an io-bound stage");
        }
    }

    #[test]
    fn device_sweep_prefers_faster_disks() {
        let m = model();
        // Enough cores that the device limit, not the core count, binds.
        let base = PredictEnv::hybrid(10, 512, HybridConfig::SsdSsd);
        let sweep = local_device_sweep(
            &m,
            &base,
            &[
                presets::hdd_wd4000(),
                presets::ssd_mz7lm(),
                presets::nvme_p4510(),
            ],
        );
        assert_eq!(sweep.best().label, "P4510-NVMe");
        let hdd = &sweep.points[0];
        let nvme = &sweep.points[2];
        assert!(hdd.runtime_secs > 3.0 * nvme.runtime_secs);
    }

    #[test]
    fn failure_inflation_is_a_truncated_geometric_series() {
        // No failures, no inflation; fraction zero, no inflation.
        assert_eq!(failure_inflation(0.0, 0.5, 4), 1.0);
        assert_eq!(failure_inflation(0.2, 0.0, 4), 1.0);
        // maxFailures = 1 means the first failure aborts: nothing retried.
        assert_eq!(failure_inflation(0.2, 0.5, 1), 1.0);
        // Spark default maxFailures = 4: r + r^2 + r^3, half a task wasted each.
        let r: f64 = 0.1;
        let expect = 1.0 + 0.5 * (r + r * r + r * r * r);
        assert!((failure_inflation(0.1, 0.5, 4) - expect).abs() < 1e-12);
        // Clamps keep pathological inputs finite and ordered.
        assert!(failure_inflation(2.0, 5.0, 4) < 4.0);
        assert!(failure_inflation(0.3, 0.5, 4) > failure_inflation(0.1, 0.5, 4));
    }

    #[test]
    fn failure_sweep_scales_the_clean_prediction() {
        let m = model();
        let base = PredictEnv::hybrid(10, 8, HybridConfig::SsdSsd);
        let clean = m.predict(&base);
        let sweep = failure_sweep(&m, &base, &[0.0, 0.02, 0.10], 0.5, 4);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].label, "f=0%");
        assert_eq!(sweep.points[1].label, "f=2%");
        assert!((sweep.points[0].runtime_secs - clean).abs() < 1e-9);
        assert!(sweep.points[2].runtime_secs > sweep.points[1].runtime_secs);
        assert!(sweep.points[1].runtime_secs > clean);
    }

    fn hdfs_model() -> AppModel {
        // An input-scan stage that is HDFS-read-bound at high parallelism.
        AppModel::new(
            "scan",
            vec![StageModel {
                name: "MD".into(),
                m: 8192,
                t_avg: 2.0,
                delta_scale: 0.0,
                channels: vec![ChannelModel::new(
                    IoChannel::HdfsRead,
                    Bytes::from_gib(1024),
                    Bytes::from_mib(128),
                    None,
                )],
            }],
        )
    }

    #[test]
    fn effective_device_matches_endpoints() {
        let base = presets::ssd_mz7lm();
        let profile = StorageProfile::s3();
        let rs = Bytes::from_mib(128);
        // All hits: the blend is the local device.
        let dev = tier_effective_device(&base, &profile, 4, 1.0);
        let b = dev.bandwidth(IoDir::Read, rs);
        let l = base.bandwidth(IoDir::Read, rs);
        assert!((b.as_mib_per_sec() - l.as_mib_per_sec()).abs() < 1.0);
        // All misses: the blend is this node's share of the remote tier.
        let dev = tier_effective_device(&base, &profile, 4, 0.0);
        let b = dev.bandwidth(IoDir::Read, rs);
        let r = profile.remote_device().unwrap().bandwidth(IoDir::Read, rs) / 4.0;
        assert!((b.as_mib_per_sec() - r.as_mib_per_sec()).abs() < 1.0);
        // Local profile: untouched.
        let dev = tier_effective_device(&base, &StorageProfile::Local, 4, 0.3);
        assert_eq!(dev.bandwidth(IoDir::Read, rs), l);
    }

    #[test]
    fn cache_sweep_has_a_diminishing_returns_knee() {
        // 64 nodes on one 10 GiB/s store: the per-node share (~47 MiB/s at
        // 128 MiB requests) is far below the local SSD, so cache pays.
        let m = hdfs_model();
        let base = PredictEnv::hybrid(64, 32, HybridConfig::SsdSsd);
        let ws = Bytes::from_gib(1024);
        let caps: Vec<Bytes> = [0u64, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&g| Bytes::from_gib(g))
            .collect();
        let sweep = cache_sweep(&m, &base, &StorageProfile::s3(), ws, &caps);
        assert_eq!(sweep.points.len(), caps.len());
        // More cache never hurts.
        for w in sweep.points.windows(2) {
            assert!(
                w[1].runtime_secs <= w[0].runtime_secs + 1e-9,
                "{} -> {}",
                w[0].runtime_secs,
                w[1].runtime_secs
            );
        }
        // Past ws/N = 16 GiB per node the hit ratio saturates at 1:
        // further capacity buys nothing — the knee.
        let knee = sweep.knee(1.01).expect("diminishing returns appear");
        assert!(knee <= 5, "knee index = {knee}");
        let last = sweep.points.last().unwrap().runtime_secs;
        let full = &sweep.points[4]; // 16 GiB/node caches the working set
        assert!((full.runtime_secs - last).abs() < 1e-6);
        assert!(sweep.points[0].runtime_secs > 2.0 * last, "S3-only is slow");
    }

    #[test]
    fn storage_sweep_orders_tiers_sensibly() {
        // 256 nodes: every shared tier's per-node share sits below the
        // local SSD, so the canonical ordering emerges.
        let m = hdfs_model();
        let base = PredictEnv::hybrid(256, 8, HybridConfig::SsdSsd);
        let ws = Bytes::from_gib(1024);
        let profiles = [
            StorageProfile::Local,
            StorageProfile::s3(),
            StorageProfile::s3_cached(),
            StorageProfile::lustre(),
        ];
        let sweep = storage_sweep(&m, &base, &profiles, ws);
        let get = |name: &str| {
            sweep
                .points
                .iter()
                .find(|p| p.label == name)
                .unwrap()
                .runtime_secs
        };
        assert!(get("local") <= get("lustre") + 1e-9);
        assert!(get("s3") > get("s3-cached"), "a cache in front of S3 pays");
        assert!(get("s3") > get("lustre"), "parallel FS beats object store");
        // 256 x 64 GiB of cache holds the 1 TiB working set entirely:
        // the cached profile converges to local-device speed.
        let local = get("local");
        assert!((get("s3-cached") - local).abs() < 0.01 * local);
    }

    #[test]
    fn marginal_gains_math() {
        let s = Sweep {
            title: "t".into(),
            points: vec![
                SweepPoint {
                    label: "a".into(),
                    runtime_secs: 100.0,
                },
                SweepPoint {
                    label: "b".into(),
                    runtime_secs: 50.0,
                },
                SweepPoint {
                    label: "c".into(),
                    runtime_secs: 49.0,
                },
            ],
        };
        let g = s.marginal_gains();
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert_eq!(s.knee(1.05), Some(1));
        assert_eq!(s.knee(1.001), None);
    }
}
