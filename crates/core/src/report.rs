//! Measured-vs-predicted comparison tables — the format of the paper's
//! Figures 7–12 ("exp" vs "model") with error rates.

use std::fmt;

/// One comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Row label (configuration / stage).
    pub label: String,
    /// Measured ("exp") seconds.
    pub measured_secs: f64,
    /// Model-predicted seconds.
    pub predicted_secs: f64,
}

impl ComparisonRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>, measured_secs: f64, predicted_secs: f64) -> Self {
        ComparisonRow {
            label: label.into(),
            measured_secs,
            predicted_secs,
        }
    }

    /// Absolute relative error in percent (`|pred − exp| / exp × 100`).
    pub fn error_pct(&self) -> f64 {
        if self.measured_secs == 0.0 {
            return 0.0;
        }
        (self.predicted_secs - self.measured_secs).abs() / self.measured_secs * 100.0
    }
}

/// A titled set of comparison rows, printable as an aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    /// Table title (e.g. `"Fig 7: GATK4, 10 slaves"`).
    pub title: String,
    /// The rows.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        ComparisonTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: ComparisonRow) {
        self.rows.push(row);
    }

    /// Mean error across rows, in percent.
    pub fn avg_error_pct(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(ComparisonRow::error_pct).sum::<f64>() / self.rows.len() as f64
    }

    /// Worst row error, in percent.
    pub fn max_error_pct(&self) -> f64 {
        self.rows
            .iter()
            .map(ComparisonRow::error_pct)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "  {:<42} {:>12} {:>12} {:>8}",
            "configuration", "exp (min)", "model (min)", "err %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<42} {:>12.2} {:>12.2} {:>8.1}",
                r.label,
                r.measured_secs / 60.0,
                r.predicted_secs / 60.0,
                r.error_pct()
            )?;
        }
        writeln!(
            f,
            "  {:<42} {:>12} {:>12} {:>8.1}",
            "average error",
            "",
            "",
            self.avg_error_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_math() {
        let r = ComparisonRow::new("a", 100.0, 110.0);
        assert!((r.error_pct() - 10.0).abs() < 1e-12);
        let r = ComparisonRow::new("b", 100.0, 95.0);
        assert!((r.error_pct() - 5.0).abs() < 1e-12);
        assert_eq!(ComparisonRow::new("z", 0.0, 5.0).error_pct(), 0.0);
    }

    #[test]
    fn table_aggregates() {
        let mut t = ComparisonTable::new("Fig X");
        t.push(ComparisonRow::new("a", 100.0, 110.0));
        t.push(ComparisonRow::new("b", 100.0, 98.0));
        assert!((t.avg_error_pct() - 6.0).abs() < 1e-12);
        assert!((t.max_error_pct() - 10.0).abs() < 1e-12);
        let s = t.to_string();
        assert!(s.contains("Fig X") && s.contains("err %") && s.contains("average error"));
    }
}
