//! A processor-sharing resource server with per-flow rate caps.
//!
//! Disks and NICs in the Doppio simulator are capacity-shared resources: at
//! any instant a set of *flows* (outstanding I/O streams) divides the
//! resource's capacity. The division follows max–min fairness ("water
//! filling"): every flow gets an equal share, except that a flow never
//! receives more than its own cap, and capacity freed by capped flows is
//! redistributed to the rest.
//!
//! Units are deliberately abstract ("service units per second"): a disk is a
//! server of capacity 1.0 *device-second per second* where a flow with
//! request size `rs` needs `bytes / BW(rs)` device-seconds, while a NIC is a
//! server of capacity `link_bytes_per_second` where a flow needs plain bytes.

use std::collections::HashMap;
use std::fmt;

use crate::{SimDuration, SimTime};

/// Handle to a flow registered on a [`PsServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Parameters of a new flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Total service demand, in the server's service units.
    pub demand: f64,
    /// Maximum service rate this flow can attain on its own, in service
    /// units per second (`f64::INFINITY` for uncapped flows).
    pub cap: f64,
    /// Opaque owner tag returned on completion (e.g. a task or flow-group id).
    pub tag: u64,
}

#[derive(Debug)]
struct Flow {
    remaining: f64,
    demand: f64,
    cap: f64,
    rate: f64,
    tag: u64,
}

/// A processor-sharing server: capacity divided max–min fairly among active
/// flows, each flow optionally rate-capped.
///
/// The server is *passive*: it never touches the event engine. The owning
/// simulation advances it to the current time before mutating it, then asks
/// [`PsServer::next_completion`] when to look again. Between mutations all
/// rates are constant, so the next completion time is exact.
///
/// # Example
///
/// ```
/// use doppio_events::{FlowSpec, PsServer, SimTime};
///
/// // A disk offering 1.0 device-second per second; two identical flows each
/// // needing 2.0 device-seconds, uncapped: they share the capacity and both
/// // finish at t = 4.
/// let mut disk = PsServer::new(1.0);
/// let t0 = SimTime::ZERO;
/// disk.add_flow(t0, FlowSpec { demand: 2.0, cap: f64::INFINITY, tag: 7 });
/// disk.add_flow(t0, FlowSpec { demand: 2.0, cap: f64::INFINITY, tag: 8 });
/// let done = disk.next_completion().unwrap();
/// assert_eq!(done, SimTime::from_secs(4.0));
/// disk.advance(done);
/// assert_eq!(disk.take_completed().len(), 2);
/// ```
pub struct PsServer {
    capacity: f64,
    flows: HashMap<FlowId, Flow>,
    completed: Vec<(FlowId, u64)>,
    next_id: u64,
    last_advance: SimTime,
    busy: SimDuration,
    served: f64,
}

/// Relative tolerance used to declare a flow finished despite floating-point
/// drift in rate integration.
const COMPLETION_EPS: f64 = 1e-9;

impl PsServer {
    /// Creates a server with the given capacity in service units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "server capacity must be finite and positive, got {capacity}"
        );
        PsServer {
            capacity,
            flows: HashMap::new(),
            completed: Vec::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            busy: SimDuration::ZERO,
            served: 0.0,
        }
    }

    /// The configured capacity, in service units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight (not yet completed) flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total time the server had at least one active flow.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total service units delivered so far.
    pub fn served_units(&self) -> f64 {
        self.served
    }

    /// Integrates flow progress up to `now`, moving finished flows to the
    /// completed list. Must be called (directly or via `add_flow` /
    /// `remove_flow`) before reading state at a new time.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last advance (time cannot flow backwards).
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "PsServer time went backwards: {} -> {}",
            self.last_advance,
            now
        );
        let dt = (now - self.last_advance).as_secs();
        self.last_advance = now;
        if dt == 0.0 {
            self.harvest_completed();
            return;
        }
        if !self.flows.is_empty() {
            self.busy += SimDuration::from_secs(dt);
        }
        for flow in self.flows.values_mut() {
            let done = flow.rate * dt;
            flow.remaining -= done;
            self.served += done;
        }
        self.harvest_completed();
    }

    fn harvest_completed(&mut self) {
        // A flow is done when its residual is negligible relative to its
        // demand, or when draining it would take less time than the clock
        // can represent at the current timestamp — without the latter, a
        // rounding residual of a few ULPs would schedule completions at
        // `now + 0` forever (zero-progress livelock).
        let time_quantum = 4.0 * f64::EPSILON * self.last_advance.as_secs().max(1.0);
        let mut finished: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| {
                f.remaining <= COMPLETION_EPS * f.demand.max(1.0)
                    || (f.rate > 0.0 && f.remaining / f.rate <= time_quantum)
            })
            .map(|(id, _)| *id)
            .collect();
        if finished.is_empty() {
            return;
        }
        // HashMap iteration order is randomized per process; completions
        // feed the executor's scheduling decisions, so sort for
        // reproducibility (FlowId order = submission order).
        finished.sort_unstable();
        for id in finished {
            let f = self.flows.remove(&id).expect("flow present");
            self.completed.push((id, f.tag));
        }
        self.reassign_rates();
    }

    /// Registers a new flow at time `now` and returns its id.
    ///
    /// A zero-demand flow completes immediately (it appears in the next
    /// [`PsServer::take_completed`] call without consuming capacity).
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative/NaN or `cap` is not positive.
    pub fn add_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(
            spec.demand.is_finite() && spec.demand >= 0.0,
            "flow demand must be finite and non-negative, got {}",
            spec.demand
        );
        assert!(
            spec.cap > 0.0,
            "flow cap must be positive, got {}",
            spec.cap
        );
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        if spec.demand == 0.0 {
            self.completed.push((id, spec.tag));
            return id;
        }
        self.flows.insert(
            id,
            Flow {
                remaining: spec.demand,
                demand: spec.demand,
                cap: spec.cap,
                rate: 0.0,
                tag: spec.tag,
            },
        );
        self.reassign_rates();
        id
    }

    /// Removes a flow before completion (e.g. a cancelled transfer).
    /// Returns the remaining demand, or `None` if the flow was unknown or
    /// already complete.
    pub fn remove_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.reassign_rates();
        Some(flow.remaining)
    }

    /// Drains the list of flows that have finished since the last call,
    /// returning `(flow id, owner tag)` pairs in completion order.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Absolute time at which the next flow will finish, assuming no further
    /// mutations. `None` when idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| {
                let dt = (f.remaining / f.rate).max(0.0);
                self.last_advance + SimDuration::from_secs(dt)
            })
            .min()
    }

    /// Current service rate of a flow, in units per second.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Sum of the rates of all active flows (the server's instantaneous
    /// delivered capacity).
    pub fn total_rate(&self) -> f64 {
        self.flows.values().map(|f| f.rate).sum()
    }

    /// Max–min fair ("water-filling") rate assignment with caps.
    fn reassign_rates(&mut self) {
        let n = self.flows.len();
        if n == 0 {
            return;
        }
        // Sort flow ids by cap ascending, then fill.
        let mut order: Vec<FlowId> = self.flows.keys().copied().collect();
        order.sort_by(|a, b| {
            let ca = self.flows[a].cap;
            let cb = self.flows[b].cap;
            ca.total_cmp(&cb).then(a.cmp(b))
        });
        let mut remaining_capacity = self.capacity;
        let mut remaining_flows = n;
        for id in order {
            let fair_share = remaining_capacity / remaining_flows as f64;
            let flow = self.flows.get_mut(&id).expect("flow present");
            let rate = flow.cap.min(fair_share);
            flow.rate = rate;
            remaining_capacity -= rate;
            remaining_flows -= 1;
        }
    }
}

impl fmt::Debug for PsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PsServer")
            .field("capacity", &self.capacity)
            .field("active_flows", &self.flows.len())
            .field("last_advance", &self.last_advance)
            .field("busy", &self.busy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(demand: f64, cap: f64) -> FlowSpec {
        FlowSpec {
            demand,
            cap,
            tag: 0,
        }
    }

    #[test]
    fn single_uncapped_flow_gets_full_capacity() {
        let mut s = PsServer::new(2.0);
        s.add_flow(SimTime::ZERO, spec(4.0, f64::INFINITY));
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn capped_flow_limited_to_cap() {
        let mut s = PsServer::new(10.0);
        let id = s.add_flow(SimTime::ZERO, spec(4.0, 2.0));
        assert_eq!(s.flow_rate(id), Some(2.0));
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn break_point_behaviour_matches_paper() {
        // Paper Section IV-A: T = 60 MB/s per core, BW = 120 MB/s => b = 2.
        // With P <= 2 flows each attains T; with P = 4 each gets BW / 4.
        let bw = 120.0;
        let t = 60.0;
        let mut s = PsServer::new(bw);
        let a = s.add_flow(SimTime::ZERO, spec(600.0, t));
        let b = s.add_flow(SimTime::ZERO, spec(600.0, t));
        assert_eq!(s.flow_rate(a), Some(60.0));
        assert_eq!(s.flow_rate(b), Some(60.0));
        let c = s.add_flow(SimTime::ZERO, spec(600.0, t));
        let d = s.add_flow(SimTime::ZERO, spec(600.0, t));
        for id in [a, b, c, d] {
            assert_eq!(s.flow_rate(id), Some(30.0), "4 flows share BW equally");
        }
    }

    #[test]
    fn water_filling_redistributes_capped_slack() {
        // capacity 10, caps [1, inf, inf]: capped flow gets 1, others 4.5 each.
        let mut s = PsServer::new(10.0);
        let a = s.add_flow(SimTime::ZERO, spec(100.0, 1.0));
        let b = s.add_flow(SimTime::ZERO, spec(100.0, f64::INFINITY));
        let c = s.add_flow(SimTime::ZERO, spec(100.0, f64::INFINITY));
        assert_eq!(s.flow_rate(a), Some(1.0));
        assert_eq!(s.flow_rate(b), Some(4.5));
        assert_eq!(s.flow_rate(c), Some(4.5));
        assert!((s.total_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn underloaded_server_is_not_work_conserving_beyond_caps() {
        let mut s = PsServer::new(100.0);
        s.add_flow(SimTime::ZERO, spec(10.0, 3.0));
        s.add_flow(SimTime::ZERO, spec(10.0, 4.0));
        assert!((s.total_rate() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn completion_sequence_and_rate_rescaling() {
        // Two flows, demands 1 and 3, capacity 2, uncapped.
        // Phase 1: both at rate 1; flow A finishes at t=1.
        // Phase 2: B alone at rate 2 with 2 remaining; finishes at t=2.
        let mut s = PsServer::new(2.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 1.0,
                cap: f64::INFINITY,
                tag: 1,
            },
        );
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 3.0,
                cap: f64::INFINITY,
                tag: 2,
            },
        );
        let t1 = s.next_completion().unwrap();
        assert_eq!(t1, SimTime::from_secs(1.0));
        s.advance(t1);
        let done = s.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 1);
        let t2 = s.next_completion().unwrap();
        assert_eq!(t2, SimTime::from_secs(2.0));
        s.advance(t2);
        assert_eq!(s.take_completed()[0].1, 2);
        assert_eq!(s.active_flows(), 0);
        assert_eq!(s.next_completion(), None);
    }

    #[test]
    fn zero_demand_flow_completes_immediately() {
        let mut s = PsServer::new(1.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 0.0,
                cap: 1.0,
                tag: 42,
            },
        );
        assert_eq!(s.take_completed(), vec![(FlowId(0), 42)]);
        assert_eq!(s.active_flows(), 0);
    }

    #[test]
    fn remove_flow_returns_remaining() {
        let mut s = PsServer::new(1.0);
        let id = s.add_flow(SimTime::ZERO, spec(10.0, f64::INFINITY));
        let left = s.remove_flow(SimTime::from_secs(4.0), id);
        assert!((left.unwrap() - 6.0).abs() < 1e-9);
        assert!(s.remove_flow(SimTime::from_secs(4.0), id).is_none());
    }

    #[test]
    fn busy_time_and_served_units_accumulate() {
        let mut s = PsServer::new(2.0);
        s.add_flow(SimTime::ZERO, spec(4.0, f64::INFINITY));
        s.advance(SimTime::from_secs(2.0));
        s.take_completed();
        s.advance(SimTime::from_secs(5.0)); // idle period
        assert!((s.busy_time().as_secs() - 2.0).abs() < 1e-9);
        assert!((s.served_units() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_go_backwards() {
        let mut s = PsServer::new(1.0);
        s.advance(SimTime::from_secs(2.0));
        s.advance(SimTime::from_secs(1.0));
    }

    #[test]
    fn late_join_shares_fairly() {
        let mut s = PsServer::new(2.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 4.0,
                cap: f64::INFINITY,
                tag: 1,
            },
        );
        // At t=1, 2 units remain for flow 1; flow 2 joins with demand 2.
        s.add_flow(
            SimTime::from_secs(1.0),
            FlowSpec {
                demand: 2.0,
                cap: f64::INFINITY,
                tag: 2,
            },
        );
        // Both now at rate 1; both finish at t=3.
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(3.0)));
        s.advance(SimTime::from_secs(3.0));
        assert_eq!(s.take_completed().len(), 2);
    }
}
