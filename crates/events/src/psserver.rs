//! A processor-sharing resource server with per-flow rate caps.
//!
//! Disks and NICs in the Doppio simulator are capacity-shared resources: at
//! any instant a set of *flows* (outstanding I/O streams) divides the
//! resource's capacity. The division follows max–min fairness ("water
//! filling"): every flow gets an equal share, except that a flow never
//! receives more than its own cap, and capacity freed by capped flows is
//! redistributed to the rest.
//!
//! Units are deliberately abstract ("service units per second"): a disk is a
//! server of capacity 1.0 *device-second per second* where a flow with
//! request size `rs` needs `bytes / BW(rs)` device-seconds, while a NIC is a
//! server of capacity `link_bytes_per_second` where a flow needs plain bytes.
//!
//! # Incremental water-filling
//!
//! Rates are defined by the sequential fill over flows sorted by
//! `(cap, id)` ascending:
//!
//! ```text
//! rc₀ = capacity
//! rateᵢ = min(capᵢ, rcᵢ / (n - i))      (computed in f64, in this order)
//! rcᵢ₊₁ = rcᵢ - rateᵢ
//! ```
//!
//! The fill is *not* recomputed from scratch on every mutation. The server
//! keeps the sorted order, the `rcᵢ` prefix, and per-position *flip
//! thresholds*, and refills only the suffix starting at the first position
//! whose rate can change (see `refill_from` and DESIGN.md §"Scheduler
//! complexity"). The refill performs bit-for-bit the same f64 operations as
//! the full fill, so every rate — and therefore every simulated timestamp —
//! is identical to the naive implementation's.

use std::collections::HashMap;
use std::fmt;

use crate::{SimDuration, SimTime};

/// Handle to a flow registered on a [`PsServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Parameters of a new flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Total service demand, in the server's service units.
    pub demand: f64,
    /// Maximum service rate this flow can attain on its own, in service
    /// units per second (`f64::INFINITY` for uncapped flows).
    pub cap: f64,
    /// Opaque owner tag returned on completion (e.g. a task or flow-group id).
    pub tag: u64,
}

/// Cold per-flow data, stored in a slab and reached through `order`.
/// The hot per-pump state (residual, rate, reciprocal rate, finish
/// threshold) lives in position-indexed parallel arrays on the server —
/// see the struct-of-arrays note on [`PsServer`].
#[derive(Debug, Clone)]
struct Slot {
    demand: f64,
    cap: f64,
    tag: u64,
    id: u64,
}

/// Relative tolerance used to declare a flow finished despite floating-point
/// drift in rate integration.
const COMPLETION_EPS: f64 = 1e-9;

/// Flow counts beyond this are treated as "this flow can never flip":
/// a threshold of 2⁴⁰ flows is unreachable, and staying far below 2⁵³
/// keeps `m as f64` exact in the threshold search.
const THRESHOLD_CLAMP: u64 = 1 << 40;

/// The smallest time step representable at timestamp `at` (a few ULPs):
/// residual work that would drain faster than this cannot be scheduled as
/// a distinct future event.
#[inline]
fn time_quantum(at: SimTime) -> f64 {
    4.0 * f64::EPSILON * at.as_secs().max(1.0)
}

/// The shared finish predicate: a flow is done when its residual is
/// negligible relative to its demand, or when draining it would take less
/// time than the clock can represent at the current timestamp — without
/// the latter, a rounding residual of a few ULPs would schedule
/// completions at `now + 0` forever (zero-progress livelock).
#[inline]
fn is_finished(remaining: f64, demand: f64, rate: f64, quantum: f64) -> bool {
    remaining <= COMPLETION_EPS * demand.max(1.0) || (rate > 0.0 && remaining / rate <= quantum)
}

/// A processor-sharing server: capacity divided max–min fairly among active
/// flows, each flow optionally rate-capped.
///
/// The server is *passive*: it never touches the event engine. The owning
/// simulation advances it to the current time before mutating it, then asks
/// [`PsServer::next_completion`] when to look again. Between mutations all
/// rates are constant, so the next completion time is exact.
///
/// # Example
///
/// ```
/// use doppio_events::{FlowSpec, PsServer, SimTime};
///
/// // A disk offering 1.0 device-second per second; two identical flows each
/// // needing 2.0 device-seconds, uncapped: they share the capacity and both
/// // finish at t = 4.
/// let mut disk = PsServer::new(1.0);
/// let t0 = SimTime::ZERO;
/// disk.add_flow(t0, FlowSpec { demand: 2.0, cap: f64::INFINITY, tag: 7 });
/// disk.add_flow(t0, FlowSpec { demand: 2.0, cap: f64::INFINITY, tag: 8 });
/// let done = disk.next_completion().unwrap();
/// assert_eq!(done, SimTime::from_secs(4.0));
/// disk.advance(done);
/// assert_eq!(disk.take_completed().len(), 2);
/// ```
pub struct PsServer {
    capacity: f64,
    /// Slab of flow slots; freed slots are recycled via `free`.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Flow id → slot, for the cold paths (`remove_flow`, `flow_rate`).
    lookup: HashMap<u64, u32>,
    /// Active slots sorted by `(cap, id)` ascending — the fill order.
    order: Vec<u32>,
    /// Hot per-flow state in *position* order (struct-of-arrays, parallel
    /// to `order`): the per-pump scan walks these four dense arrays and
    /// never touches the slab. `rem[i]` is the residual demand.
    rem: Vec<f64>,
    /// `rate[i]`: current service rate at position `i`.
    rate: Vec<f64>,
    /// `inv_rate[i] = 1/rate[i]` (∞ for a zero rate), refreshed whenever
    /// the refill writes the rate. Lets the per-pump finish/projection
    /// filter run on multiplications; exact divisions are reserved for the
    /// few flows the filter cannot rule out.
    inv_rate: Vec<f64>,
    /// Server-wide upper bound on the finish predicate's residual
    /// threshold: the max of `COMPLETION_EPS · max(demand, 1)` over every
    /// flow ever admitted. Using one conservative scalar instead of a
    /// per-flow array keeps the scan's eps clause a superset of the exact
    /// predicate while removing a whole array read from the hot loop;
    /// false positives are resolved by the exact predicate.
    eps_any: f64,
    /// `rc_before[i]`: remaining capacity entering position `i` of the fill.
    rc_before: Vec<f64>,
    /// `flip_pmin[i]`: running minimum over positions `0..=i` of the flow
    /// count `n` at which the capped flow at that position would flip to
    /// fair-limited (`u64::MAX` for fair-limited positions). Non-increasing
    /// in `i`, so the first position that flips under a join is found by
    /// binary search.
    flip_pmin: Vec<u64>,
    /// First fair-limited position (`order.len()` when every flow is
    /// capped). Positions before it all run at their cap.
    boundary: usize,
    completed: Vec<(FlowId, u64)>,
    next_id: u64,
    last_advance: SimTime,
    busy: SimDuration,
    served: f64,
    /// True when flow state changed since the last completion scan that
    /// found nothing; a clean server skips the scan entirely.
    dirty: bool,
    /// Cached `next_completion` value, valid while `nc_valid`.
    nc_cache: Option<SimTime>,
    nc_valid: bool,
    /// High-water mark of concurrently active flows since the last
    /// [`PsServer::reset_peak`].
    peak_flows: usize,
    /// Scratch buffers reused across completion scans.
    pos_scratch: Vec<u32>,
    fin_scratch: Vec<(u64, u64)>,
    /// First position a zero-dt completion rescan must re-examine: the
    /// earliest position whose rate was rewritten by a refill since the
    /// last scan. Flows before it have unchanged predicate inputs since a
    /// scan (or horizon bound) already ruled them unfinished at this
    /// timestamp, so a post-mutation harvest only walks the suffix —
    /// keeping same-time join/leave churn O(changed), not O(F).
    scan_from: usize,
    /// Near-minimum projection candidates `(position, approx_drain)`
    /// gathered during the scan; expected O(log F) entries per scan.
    cand_scratch: Vec<(u32, f64)>,
    /// Sum of the active rates, refreshed by every refill. Lets the
    /// fast-path integration accumulate `served` without a loop-carried
    /// sum (`served` is tolerance-compared observability state; `rem`
    /// keeps the exact chained sequence).
    trate: f64,
    /// True when `nc_cache` predates fast-path integration steps: the
    /// cached value is then a *stale projection* — still a tight lower
    /// bound on the true next completion (see `next_completion_lb`), but
    /// its bits may differ from a fresh projection in the last ULP, so
    /// exact readers recompute.
    nc_stale: bool,
    /// Safe-skip horizon (absolute seconds): a conservative lower bound on
    /// the earliest time any flow's finish predicate could fire, computed by
    /// the last clean scan with generous slack for integration drift (see
    /// the horizon derivation in `scan_flows`). Advances strictly below it
    /// cannot complete anything, so they take the integrate-only fast path.
    /// `NEG_INFINITY` when no clean scan has run since the last mutation.
    horizon: f64,
    /// Remaining fast-path advances the current horizon's drift slack
    /// budgets for; replenished by every clean scan. Bounds the
    /// floating-point drift between a stale projection and a live one.
    skip_budget: u32,
}

/// Upper bound on consecutive integrate-only advances between full scans;
/// the drift slack in the horizon and the stale-projection margin are
/// sized for this many steps (with ~500x headroom).
const MAX_SKIPS: u32 = 4096;

impl PsServer {
    /// Creates a server with the given capacity in service units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "server capacity must be finite and positive, got {capacity}"
        );
        PsServer {
            capacity,
            slots: Vec::new(),
            free: Vec::new(),
            lookup: HashMap::new(),
            order: Vec::new(),
            rem: Vec::new(),
            rate: Vec::new(),
            inv_rate: Vec::new(),
            eps_any: COMPLETION_EPS,
            rc_before: Vec::new(),
            flip_pmin: Vec::new(),
            boundary: 0,
            completed: Vec::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            busy: SimDuration::ZERO,
            served: 0.0,
            dirty: false,
            nc_cache: None,
            nc_valid: true,
            peak_flows: 0,
            scan_from: 0,
            pos_scratch: Vec::new(),
            fin_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            trate: 0.0,
            nc_stale: false,
            horizon: f64::NEG_INFINITY,
            skip_budget: 0,
        }
    }

    /// The configured capacity, in service units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight (not yet completed) flows.
    pub fn active_flows(&self) -> usize {
        self.order.len()
    }

    /// Highest number of concurrently active flows observed since the last
    /// [`PsServer::reset_peak`] (event-heap/bloat observability).
    pub fn peak_active_flows(&self) -> usize {
        self.peak_flows
    }

    /// Restarts the flow high-water mark from the current population.
    pub fn reset_peak(&mut self) {
        self.peak_flows = self.order.len();
    }

    /// Total time the server had at least one active flow.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total service units delivered so far.
    pub fn served_units(&self) -> f64 {
        self.served
    }

    /// Integrates flow progress up to `now`, moving finished flows to the
    /// completed list. Must be called (directly or via `add_flow` /
    /// `remove_flow`) before reading state at a new time.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last advance (time cannot flow backwards).
    #[inline]
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "PsServer time went backwards: {} -> {now}",
            self.last_advance
        );
        if !self.dirty {
            // A clean server cannot complete anything at the same timestamp
            // again, nor (by the horizon bound) strictly before `horizon` —
            // the full scans at such times are pure integration steps, so
            // the fast path below runs exactly their integration (the same
            // chained `rem -= rate·dt` per pump timestamp, bit-for-bit) and
            // skips the completion filter and projection refresh.
            if now == self.last_advance {
                return;
            }
            if self.order.is_empty() {
                // Idle server: the full advance only moves the clock.
                self.last_advance = now;
                return;
            }
            if now.as_secs() < self.horizon && self.skip_budget > 0 {
                self.skip_budget -= 1;
                let dt = (now - self.last_advance).as_secs();
                self.last_advance = now;
                self.busy += SimDuration::from_secs(dt);
                let n = self.order.len();
                let rem = &mut self.rem[..n];
                let rate = &self.rate[..n];
                for i in 0..n {
                    rem[i] -= rate[i] * dt;
                }
                self.served += self.trate * dt;
                // The cached projection now predates the residuals; it
                // remains a tight lower bound (see `next_completion_lb`).
                self.nc_stale = true;
                return;
            }
        }
        let dt = (now - self.last_advance).as_secs();
        self.last_advance = now;
        if dt == 0.0 {
            self.harvest_completed();
            return;
        }
        if !self.order.is_empty() {
            self.busy += SimDuration::from_secs(dt);
        }
        self.dirty = true;
        self.scan_flows(dt);
    }

    /// Applies a deferred sequence of advance timestamps, performing for
    /// each exactly what [`PsServer::advance`] at that time would have —
    /// the whole point of deferral is that server state afterwards is
    /// bit-identical to having advanced eagerly at every timestamp.
    ///
    /// The one shortcut taken is state-free: an idle *clean* server is
    /// untouched by any advance except for its clock, so the loop
    /// collapses to a single clock move. Batched callers
    /// (`ClusterState`'s pump-log deferral) lean on this to erase the
    /// empty-server advances that dominate a naive per-pump sweep.
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not non-decreasing from the server's
    /// current clock (time cannot flow backwards).
    pub fn replay(&mut self, times: &[SimTime]) {
        let Some(&last) = times.last() else { return };
        if !self.dirty && self.order.is_empty() {
            assert!(
                times[0] >= self.last_advance && last >= times[0],
                "PsServer time went backwards: {} -> {last}",
                self.last_advance
            );
            self.last_advance = last;
            return;
        }
        for &t in times {
            self.advance(t);
        }
    }

    fn harvest_completed(&mut self) {
        self.scan_flows(0.0);
    }

    /// One fused pass over the active flows: integrates `dt` seconds of
    /// progress (`dt > 0`), collects finished flows, and — when nothing
    /// finished — refreshes the next-completion projection, leaving
    /// [`PsServer::next_completion`] answerable in O(1).
    ///
    /// The pass runs on the dense position-indexed arrays and replaces the
    /// per-flow division of the finish predicate and the projection with a
    /// multiplication by the cached reciprocal rate. The multiplication is
    /// only a *filter*: `rem·inv_rate` approximates `rem/rate` within a few
    /// ULPs, so comparing it against thresholds widened by 1e-12 (orders of
    /// magnitude beyond the error bound) can only produce false positives,
    /// never false negatives. Every flow the filter cannot rule out is then
    /// resolved with the exact division — bit-for-bit the predicate and
    /// projection values the naive scan computes — which in steady state is
    /// a handful of flows instead of all of them.
    fn scan_flows(&mut self, dt: f64) {
        // Nothing changed since a scan that found nothing: the predicate
        // inputs (residuals, rates, the time quantum at `last_advance`)
        // are identical, so the scan would find nothing again.
        if !self.dirty {
            return;
        }
        let n = self.order.len();
        if n == 0 {
            self.dirty = false;
            self.nc_cache = None;
            self.nc_valid = true;
            self.nc_stale = false;
            self.scan_from = 0;
            self.horizon = f64::INFINITY;
            self.skip_budget = MAX_SKIPS;
            return;
        }
        // An integrating scan must walk everything; a zero-dt rescan only
        // re-examines positions whose rates a refill rewrote since the
        // last scan (`scan_from`). Reset the watermark now — a refill in
        // the completion branch below lowers it again.
        let from = if dt > 0.0 { 0 } else { self.scan_from };
        self.scan_from = n;
        let quantum = time_quantum(self.last_advance);
        let quantum_hi = quantum * (1.0 + 1e-12);
        self.pos_scratch.clear();
        self.cand_scratch.clear();
        let mut amin = f64::INFINITY;
        // Running upper bound on the candidate-collection cutoff. Flows
        // whose approximate drain lands under it are remembered as
        // projection candidates; since `amin` only shrinks, every flow
        // under the *final* cutoff was necessarily under the running bound
        // when visited, so the candidate list is a superset of the flows
        // the full projection sweep would touch. Expected list length is
        // O(log F) (new minima of a random sequence), so the second full
        // pass over the arrays is gone. The collection slop (1e-8) is much
        // wider than the projection cutoff's (1e-12): integrate-only fast
        // steps drift residuals by at most ~2e-12 relative, so any flow
        // that could later come within the projection cutoff is already
        // within the collection cutoff now — which lets a *stale* cache
        // refresh re-project over just these candidates (see
        // `next_completion`).
        let mut amin_hi = f64::INFINITY;
        // Minimum over positive-rate flows of the (drain-scale) time until
        // the residual could cross the server-wide eps bound, inflated by
        // 1% to absorb integration drift of residuals over up to MAX_SKIPS
        // fast-path steps (drift <= ~2e-12 of demand, i.e. <= 0.2% of the
        // eps bound). Feeds the safe-skip horizon.
        let mut hmin = f64::INFINITY;
        {
            // Slice once so the inner loops index without bounds checks
            // (and the integration auto-vectorizes).
            let rem = &mut self.rem[..n];
            let rate = &self.rate[..n];
            let inv = &self.inv_rate[..n];
            let eps_any = self.eps_any;
            let eps_h = 1.01 * eps_any;
            // One fused pass: integrate, flag possibly-finished flows, and
            // fold the approximate minimum drain time of the rest — a single
            // sweep over the hot arrays instead of two. Per-flow FP
            // operations and `rem` writes are exactly those of the separate
            // passes; the served sum is tolerance-compared observability
            // state, so a local accumulator (reassociating the addition into
            // `served`) is fine while `rem` stays exactly the old chained
            // sequence. `rem·inv_rate` is NaN only for a zero-rate flow with
            // zero residual, which the eps clause flags first; the NaN then
            // loses every `<` comparison, as it must.
            if dt > 0.0 {
                let mut served = 0.0;
                for i in 0..n {
                    let done = rate[i] * dt;
                    let r = rem[i] - done;
                    rem[i] = r;
                    served += done;
                    let approx = r * inv[i];
                    if r <= eps_any || approx <= quantum_hi {
                        self.pos_scratch.push(i as u32);
                    } else if rate[i] > 0.0 {
                        let h = (r - eps_h) * inv[i];
                        if h < hmin {
                            hmin = h;
                        }
                        if approx <= amin_hi {
                            self.cand_scratch.push((i as u32, approx));
                            if approx < amin {
                                amin = approx;
                                amin_hi = amin * (1.0 + 1e-8);
                            }
                        }
                    }
                }
                self.served += served;
            } else {
                for i in from..n {
                    let r = rem[i];
                    let approx = r * inv[i];
                    if r <= eps_any || approx <= quantum_hi {
                        self.pos_scratch.push(i as u32);
                    } else if rate[i] > 0.0 {
                        let h = (r - eps_h) * inv[i];
                        if h < hmin {
                            hmin = h;
                        }
                        if approx <= amin_hi {
                            self.cand_scratch.push((i as u32, approx));
                            if approx < amin {
                                amin = approx;
                                amin_hi = amin * (1.0 + 1e-8);
                            }
                        }
                    }
                }
            }
        }
        // Resolve the flagged flows with the exact predicate; unfinished
        // ones still compete for the projection minimum.
        let mut nf = 0usize;
        for k in 0..self.pos_scratch.len() {
            let i = self.pos_scratch[k] as usize;
            let f = &self.slots[self.order[i] as usize];
            if is_finished(self.rem[i], f.demand, self.rate[i], quantum) {
                self.pos_scratch[nf] = i as u32;
                nf += 1;
            } else if self.rate[i] > 0.0 {
                // Rare path: a flagged-but-unfinished flow competes for
                // the projection unconditionally, and pins the safe-skip
                // horizon at `now` (it may finish at any coming pump).
                let approx = self.rem[i] * self.inv_rate[i];
                self.cand_scratch.push((i as u32, approx));
                if approx < amin {
                    amin = approx;
                }
                hmin = f64::NEG_INFINITY;
            }
        }
        self.pos_scratch.truncate(nf);
        if self.pos_scratch.is_empty() {
            self.dirty = false;
            if from > 0 {
                // Suffix-only rescan: `amin`/`hmin`/the candidate list do
                // not cover the untouched prefix, so the projection and
                // horizon cannot be refreshed from them. Leave them unset;
                // the exact fallback in `next_completion` answers queries
                // and the next integrating advance re-establishes the
                // horizon with a full sweep.
                self.nc_valid = false;
                self.horizon = f64::NEG_INFINITY;
                return;
            }
            // Exact projection over the candidates whose approximate drain
            // is within the filter slop of the minimum: the true minimum's
            // approximation always lands under the cutoff (and therefore in
            // the candidate list), `t` is monotone in the drain, and the
            // min of identical f64 times is order-independent — so this min
            // is bit-equal to the full scan in `next_completion`.
            let cutoff = amin * (1.0 + 1e-12);
            let mut nc_best: Option<SimTime> = None;
            for k in 0..self.cand_scratch.len() {
                let (i, approx) = self.cand_scratch[k];
                if approx <= cutoff {
                    let i = i as usize;
                    let drain = (self.rem[i] / self.rate[i]).max(0.0);
                    let t = self.last_advance + SimDuration::from_secs(drain);
                    nc_best = Some(match nc_best {
                        Some(b) if b <= t => b,
                        _ => t,
                    });
                }
            }
            self.nc_cache = nc_best;
            self.nc_valid = true;
            self.nc_stale = false;
            // Safe-skip horizon: no finish predicate can fire strictly
            // before it, so advances below it are pure integration steps
            // that can be deferred. Derivation (drain scale, seconds past
            // `last_advance`):
            //  * eps clause: the residual of a positive-rate flow reaches
            //    its per-flow threshold (<= eps_any <= eps_h/1.01) no
            //    earlier than `hmin`, which already absorbs residual drift
            //    (<= ~2e-12 of demand over MAX_SKIPS fast-path steps) in eps_h's
            //    inflation.
            //  * quantum clause: a drain reaches the time quantum no
            //    earlier than `amin - 2q` with `q` evaluated at the latest
            //    possible crossing time (the quantum grows with time).
            //  The final (1 - 1e-9) factor covers the horizon arithmetic's
            //  own rounding and the crossing-time drift (<= ~2e-12
            //  relative) with ~500x margin. Zero-rate flows cannot finish
            //  until a mutation reruns the fill, and mutations force a
            //  sync, so they impose no bound.
            let la = self.last_advance.as_secs();
            let hq = if amin.is_finite() {
                let q_cross = 4.0 * f64::EPSILON * (la + amin).max(1.0);
                amin - 2.0 * q_cross
            } else {
                f64::INFINITY
            };
            let hcross = hmin.min(hq);
            self.horizon = if hcross > 0.0 {
                la + hcross * (1.0 - 1e-9)
            } else {
                f64::NEG_INFINITY
            };
            self.skip_budget = MAX_SKIPS;
            return;
        }
        self.fin_scratch.clear();
        for &pos in &self.pos_scratch {
            let si = self.order[pos as usize];
            let f = &self.slots[si as usize];
            self.fin_scratch.push((f.id, f.tag));
            self.lookup.remove(&f.id);
            self.free.push(si);
        }
        for &pos in &self.pos_scratch {
            self.trate -= self.rate[pos as usize];
        }
        // Compact the position-parallel arrays in one pass each (removal
        // positions are ascending).
        compact_sparse(&mut self.order, &self.pos_scratch);
        compact_sparse(&mut self.rem, &self.pos_scratch);
        compact_sparse(&mut self.rate, &self.pos_scratch);
        compact_sparse(&mut self.inv_rate, &self.pos_scratch);
        let first_pos = self.pos_scratch[0] as usize;
        let write = self.order.len();
        self.rc_before.truncate(write);
        self.flip_pmin.truncate(write);
        // Completions are reported in FlowId order (= submission order);
        // they feed the executor's scheduling decisions.
        self.fin_scratch.sort_unstable();
        for &(id, tag) in &self.fin_scratch {
            self.completed.push((FlowId(id), tag));
        }
        // Removing flows only raises fair shares: capped flows before the
        // first removed position stay capped, so the refill starts at the
        // earlier of that position and the fair-limited boundary.
        let start = first_pos.min(self.boundary);
        self.refill_from(start);
        self.nc_valid = false;
        self.horizon = f64::NEG_INFINITY;
        // `dirty` stays true: rates changed, so the next advance (even at
        // the same timestamp) must re-scan, exactly like the naive server.
    }

    /// Registers a new flow at time `now` and returns its id.
    ///
    /// A zero-demand flow completes immediately (it appears in the next
    /// [`PsServer::take_completed`] call without consuming capacity).
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative/NaN or `cap` is not positive.
    pub fn add_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(
            spec.demand.is_finite() && spec.demand >= 0.0,
            "flow demand must be finite and non-negative, got {}",
            spec.demand
        );
        assert!(
            spec.cap > 0.0,
            "flow cap must be positive, got {}",
            spec.cap
        );
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        if spec.demand == 0.0 {
            self.completed.push((FlowId(id), spec.tag));
            return FlowId(id);
        }
        let slot = Slot {
            demand: spec.demand,
            cap: spec.cap,
            tag: spec.tag,
            id,
        };
        let si = match self.free.pop() {
            Some(si) => {
                self.slots[si as usize] = slot;
                si
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.lookup.insert(id, si);
        let p = self.position_for(spec.cap, id);
        // A join lowers fair shares. Positions before min(p, boundary) are
        // capped; the first whose cap rises above its new, lower fair share
        // ("flips") is found via the flip-threshold prefix minima. All
        // positions from the earliest change onward are refilled.
        let n_new = self.order.len() + 1;
        let limit = p.min(self.boundary);
        let start = self.first_flip_before(limit, n_new as u64);
        self.order.insert(p, si);
        self.rem.insert(p, spec.demand);
        self.eps_any = self.eps_any.max(COMPLETION_EPS * spec.demand.max(1.0));
        // `rate`/`inv_rate` at `start..` (and `p ≥ start`) are rewritten by
        // the refill below, as are `rc_before`/`flip_pmin`, which only need
        // the right length.
        self.rate.insert(p, 0.0);
        self.inv_rate.insert(p, f64::INFINITY);
        self.rc_before.push(0.0);
        self.flip_pmin.push(0);
        self.refill_from(start);
        self.dirty = true;
        self.nc_valid = false;
        self.horizon = f64::NEG_INFINITY;
        self.peak_flows = self.peak_flows.max(self.order.len());
        FlowId(id)
    }

    /// Removes a flow before completion (e.g. a cancelled transfer).
    /// Returns the remaining demand, or `None` if the flow was unknown or
    /// already complete.
    pub fn remove_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let si = self.lookup.remove(&id.0)?;
        let cap = self.slots[si as usize].cap;
        let p = self.position_for(cap, id.0);
        debug_assert_eq!(self.order[p], si, "order index out of sync");
        let remaining = self.rem[p];
        self.trate -= self.rate[p];
        self.order.remove(p);
        self.rem.remove(p);
        self.rate.remove(p);
        self.inv_rate.remove(p);
        self.rc_before.pop();
        self.flip_pmin.pop();
        self.free.push(si);
        // A leave raises fair shares: capped flows before p stay capped.
        let start = p.min(self.boundary);
        self.refill_from(start);
        self.dirty = true;
        self.nc_valid = false;
        self.horizon = f64::NEG_INFINITY;
        Some(remaining)
    }

    /// Drains the list of flows that have finished since the last call,
    /// returning `(flow id, owner tag)` pairs in completion order.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Appends the owner tags of flows finished since the last drain to
    /// `out`, in completion order — the allocation-free fast path of
    /// [`PsServer::take_completed`].
    #[inline]
    pub fn drain_completed_tags(&mut self, out: &mut Vec<u64>) {
        if self.completed.is_empty() {
            return;
        }
        out.extend(self.completed.drain(..).map(|(_, tag)| tag));
    }

    /// Absolute time at which the next flow will finish, assuming no further
    /// mutations. `None` when idle.
    ///
    /// The value is cached between calls and invalidated by any advance or
    /// mutation, so repeated queries of an unchanged server are O(1).
    pub fn next_completion(&mut self) -> Option<SimTime> {
        if self.nc_valid && self.nc_stale {
            // The cache only went stale through integrate-only fast steps:
            // rates and the flow population are unchanged since the last
            // clean scan (mutations clear `nc_valid` instead). All drains
            // shrank by the same elapsed time, up to per-flow integration
            // drift of <= ~2e-12 relative — far inside the 1e-8 candidate
            // collection slop — so every flow that can now be within the
            // 1e-12 projection cutoff is in `cand_scratch`. Re-projecting
            // over the candidates alone is therefore bit-equal to the full
            // sweep, at O(log F) instead of O(F).
            let mut amin = f64::INFINITY;
            for &(i, _) in &self.cand_scratch {
                let approx = self.rem[i as usize] * self.inv_rate[i as usize];
                if approx < amin {
                    amin = approx;
                }
            }
            let cutoff = amin * (1.0 + 1e-12);
            let mut best: Option<SimTime> = None;
            for &(i, _) in &self.cand_scratch {
                let i = i as usize;
                if self.rem[i] * self.inv_rate[i] <= cutoff {
                    let dt = (self.rem[i] / self.rate[i]).max(0.0);
                    let t = self.last_advance + SimDuration::from_secs(dt);
                    best = Some(match best {
                        Some(b) if b <= t => b,
                        _ => t,
                    });
                }
            }
            self.nc_cache = best;
            self.nc_stale = false;
        } else if !self.nc_valid {
            // Reciprocal-filtered projection: find the approximate minimum
            // drain with multiplications, then take exact divisions only
            // for flows within the filter slop of it — bit-equal to the
            // all-divisions scan by the cutoff argument in `scan_flows`.
            let n = self.order.len();
            let mut amin = f64::INFINITY;
            for i in 0..n {
                if self.rate[i] > 0.0 {
                    let approx = self.rem[i] * self.inv_rate[i];
                    if approx < amin {
                        amin = approx;
                    }
                }
            }
            let cutoff = amin * (1.0 + 1e-12);
            let mut best: Option<SimTime> = None;
            for i in 0..n {
                if self.rate[i] > 0.0 && self.rem[i] * self.inv_rate[i] <= cutoff {
                    let dt = (self.rem[i] / self.rate[i]).max(0.0);
                    let t = self.last_advance + SimDuration::from_secs(dt);
                    best = Some(match best {
                        Some(b) if b <= t => b,
                        _ => t,
                    });
                }
            }
            self.nc_cache = best;
            self.nc_valid = true;
            self.nc_stale = false;
        }
        self.nc_cache
    }

    /// Cheap next-completion estimate for aggregating minima across many
    /// servers without forcing a fresh projection on each.
    ///
    /// Returns `(t, true)` when `t` is the exact next completion time, or
    /// `(t, false)` when `t` is a conservative *lower bound* on it: the
    /// true value is `>= t`. A stale projection differs from a fresh one
    /// only by floating-point drift of the integrated residuals (`<=
    /// ~2e-12` relative over the fast-path budget), bounded here by a
    /// 1e-11 margin. The margin is kept tight on purpose: every server
    /// whose stale bound undercuts the folded minimum must be re-projected,
    /// so a fat margin would drag near-tied servers (common under
    /// symmetric load) into a refresh on every single pump. A caller folding a minimum over servers may therefore
    /// return an exact candidate `m` untouched as long as every stale
    /// bound is `>= m`; otherwise it must sync the offending server (e.g.
    /// via [`PsServer::next_completion`]) and re-fold. `None` means no flow
    /// can complete while the current rates hold.
    #[inline]
    pub fn next_completion_lb(&mut self) -> Option<(SimTime, bool)> {
        if !self.nc_valid {
            return self.next_completion().map(|t| (t, true));
        }
        if !self.nc_stale {
            return self.nc_cache.map(|t| (t, true));
        }
        self.nc_cache
            .map(|t| (SimTime::from_secs(t.as_secs() * (1.0 - 1e-11)), false))
    }

    /// Absolute time (seconds) strictly below which [`PsServer::advance`]
    /// cannot move any flow to the completed list — advances before it
    /// are pure integration, so a caller may defer them without missing
    /// a harvest. This is the safe-skip horizon established by the last
    /// full scan: it bounds *both* finish clauses (the relative-eps one,
    /// which can fire up to `eps·demand/rate` seconds before the
    /// projected completion time, and the time-quantum one), which makes
    /// it strictly stronger than the [`PsServer::next_completion_lb`]
    /// bound for deciding whether an advance can be skipped.
    ///
    /// `NEG_INFINITY` when the answer is unknown (rates changed since
    /// the last scan) or completions await draining; `INFINITY` when the
    /// server is idle or nothing can finish under the current rates.
    pub fn harvest_horizon(&self) -> f64 {
        if self.dirty || !self.completed.is_empty() {
            f64::NEG_INFINITY
        } else if self.order.is_empty() {
            f64::INFINITY
        } else {
            self.horizon
        }
    }

    /// Current service rate of a flow, in units per second.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.lookup.get(&id.0).map(|&si| {
            let f = &self.slots[si as usize];
            self.rate[self.position_for(f.cap, f.id)]
        })
    }

    /// Sum of the rates of all active flows (the server's instantaneous
    /// delivered capacity).
    pub fn total_rate(&self) -> f64 {
        self.rate.iter().sum()
    }

    /// Position of `(cap, id)` in the fill order (binary search).
    fn position_for(&self, cap: f64, id: u64) -> usize {
        self.order.partition_point(|&si| {
            let f = &self.slots[si as usize];
            match f.cap.total_cmp(&cap) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => f.id < id,
                std::cmp::Ordering::Greater => false,
            }
        })
    }

    /// First position `< limit` whose capped flow flips to fair-limited
    /// when the flow count reaches `n_new`; `limit` when none does.
    /// `flip_pmin` is non-increasing, so this is a binary search.
    fn first_flip_before(&self, limit: usize, n_new: u64) -> usize {
        self.flip_pmin[..limit].partition_point(|&pm| pm >= n_new)
    }

    /// Recomputes rates for positions `start..`, reproducing bit-for-bit
    /// the fill a full recomputation would produce there. The caller
    /// guarantees positions before `start` are unaffected (all capped,
    /// with unchanged `rc` prefix) — see the join/leave/harvest call sites.
    fn refill_from(&mut self, start: usize) {
        let n = self.order.len();
        debug_assert!(start <= n);
        debug_assert!(start <= self.boundary || self.boundary >= n);
        self.scan_from = self.scan_from.min(start);
        let mut rc = if start == 0 {
            self.capacity
        } else {
            // Same operands and operation as the fill's `rc -= rate`.
            self.rc_before[start - 1] - self.rate[start - 1]
        };
        self.boundary = n;
        // `trate` is delta-updated with the suffix's old and new sums so a
        // refill touching few positions stays cheap; callers that drop
        // flows subtract the dropped rates before refilling. Drift from
        // the incremental sums only reaches `served` (tolerance-compared),
        // never the residual chain.
        let mut old_sum = 0.0;
        let mut new_sum = 0.0;
        for i in start..n {
            old_sum += self.rate[i];
            self.rc_before[i] = rc;
            let fair_share = rc / (n - i) as f64;
            let cap = self.slots[self.order[i] as usize].cap;
            let rate = cap.min(fair_share);
            self.rate[i] = rate;
            self.inv_rate[i] = 1.0 / rate;
            new_sum += rate;
            rc -= rate;
            let capped = rate == cap;
            let threshold = if capped {
                max_flows_while_capped(self.rc_before[i], cap) + i as u64
            } else {
                if self.boundary == n {
                    self.boundary = i;
                }
                u64::MAX
            };
            let prev = if i == 0 {
                u64::MAX
            } else {
                self.flip_pmin[i - 1]
            };
            self.flip_pmin[i] = prev.min(threshold);
        }
        self.trate += new_sum - old_sum;
    }
}

/// Removes the ascending positions `removed` from `v` with a single
/// write-pointer pass starting at the first removal.
fn compact_sparse<T: Copy>(v: &mut Vec<T>, removed: &[u32]) {
    let first = removed[0] as usize;
    let mut write = first;
    let mut next_rm = 0usize;
    for read in first..v.len() {
        if next_rm < removed.len() && removed[next_rm] as usize == read {
            next_rm += 1;
            continue;
        }
        v[write] = v[read];
        write += 1;
    }
    v.truncate(write);
}

/// Largest flow count `m` for which a flow with this `cap` stays capped
/// given `rc` capacity entering its fill position: max `m ≥ 1` with
/// `cap ≤ rc / (m as f64)` (evaluated in f64, exactly as the fill does).
/// `rc / (m as f64)` is weakly decreasing in `m`, so an initial estimate
/// `rc / cap` is off by at most a couple of ULP-steps.
fn max_flows_while_capped(rc: f64, cap: f64) -> u64 {
    debug_assert!(rc > 0.0 && cap > 0.0 && cap.is_finite());
    let estimate = rc / cap;
    if estimate >= THRESHOLD_CLAMP as f64 {
        return THRESHOLD_CLAMP;
    }
    let mut m = (estimate as u64).max(1);
    while m > 1 && rc / (m as f64) < cap {
        m -= 1;
    }
    while rc / ((m + 1) as f64) >= cap {
        m += 1;
    }
    m
}

impl fmt::Debug for PsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PsServer")
            .field("capacity", &self.capacity)
            .field("active_flows", &self.order.len())
            .field("last_advance", &self.last_advance)
            .field("busy", &self.busy)
            .finish()
    }
}

#[cfg(test)]
mod naive {
    //! The original O(F log F) water-filling server, kept verbatim as the
    //! reference oracle for the incremental implementation.

    use super::{is_finished, time_quantum, FlowId, FlowSpec};
    use crate::{SimDuration, SimTime};
    use std::collections::HashMap;

    #[derive(Debug)]
    struct Flow {
        remaining: f64,
        demand: f64,
        cap: f64,
        rate: f64,
        tag: u64,
    }

    #[derive(Debug)]
    pub struct NaivePsServer {
        capacity: f64,
        flows: HashMap<FlowId, Flow>,
        completed: Vec<(FlowId, u64)>,
        next_id: u64,
        last_advance: SimTime,
        busy: SimDuration,
        served: f64,
    }

    impl NaivePsServer {
        pub fn new(capacity: f64) -> Self {
            NaivePsServer {
                capacity,
                flows: HashMap::new(),
                completed: Vec::new(),
                next_id: 0,
                last_advance: SimTime::ZERO,
                busy: SimDuration::ZERO,
                served: 0.0,
            }
        }

        pub fn advance(&mut self, now: SimTime) {
            assert!(now >= self.last_advance);
            let dt = (now - self.last_advance).as_secs();
            self.last_advance = now;
            if dt == 0.0 {
                self.harvest_completed();
                return;
            }
            if !self.flows.is_empty() {
                self.busy += SimDuration::from_secs(dt);
            }
            for flow in self.flows.values_mut() {
                let done = flow.rate * dt;
                flow.remaining -= done;
                self.served += done;
            }
            self.harvest_completed();
        }

        fn harvest_completed(&mut self) {
            let quantum = time_quantum(self.last_advance);
            let mut finished: Vec<FlowId> = self
                .flows
                .iter()
                .filter(|(_, f)| is_finished(f.remaining, f.demand, f.rate, quantum))
                .map(|(id, _)| *id)
                .collect();
            if finished.is_empty() {
                return;
            }
            finished.sort_unstable();
            for id in finished {
                let f = self.flows.remove(&id).expect("flow present");
                self.completed.push((id, f.tag));
            }
            self.reassign_rates();
        }

        pub fn add_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
            self.advance(now);
            let id = FlowId(self.next_id);
            self.next_id += 1;
            if spec.demand == 0.0 {
                self.completed.push((id, spec.tag));
                return id;
            }
            self.flows.insert(
                id,
                Flow {
                    remaining: spec.demand,
                    demand: spec.demand,
                    cap: spec.cap,
                    rate: 0.0,
                    tag: spec.tag,
                },
            );
            self.reassign_rates();
            id
        }

        pub fn remove_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
            self.advance(now);
            let flow = self.flows.remove(&id)?;
            self.reassign_rates();
            Some(flow.remaining)
        }

        pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
            std::mem::take(&mut self.completed)
        }

        pub fn next_completion(&self) -> Option<SimTime> {
            self.flows
                .values()
                .filter(|f| f.rate > 0.0)
                .map(|f| {
                    let dt = (f.remaining / f.rate).max(0.0);
                    self.last_advance + SimDuration::from_secs(dt)
                })
                .min()
        }

        pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
            self.flows.get(&id).map(|f| f.rate)
        }

        pub fn busy_time(&self) -> SimDuration {
            self.busy
        }

        pub fn served_units(&self) -> f64 {
            self.served
        }

        pub fn active_flows(&self) -> usize {
            self.flows.len()
        }

        fn reassign_rates(&mut self) {
            let n = self.flows.len();
            if n == 0 {
                return;
            }
            let mut order: Vec<FlowId> = self.flows.keys().copied().collect();
            order.sort_by(|a, b| {
                let ca = self.flows[a].cap;
                let cb = self.flows[b].cap;
                ca.total_cmp(&cb).then(a.cmp(b))
            });
            let mut remaining_capacity = self.capacity;
            let mut remaining_flows = n;
            for id in order {
                let fair_share = remaining_capacity / remaining_flows as f64;
                let flow = self.flows.get_mut(&id).expect("flow present");
                let rate = flow.cap.min(fair_share);
                flow.rate = rate;
                remaining_capacity -= rate;
                remaining_flows -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::naive::NaivePsServer;
    use super::*;
    use proptest::prelude::*;

    fn spec(demand: f64, cap: f64) -> FlowSpec {
        FlowSpec {
            demand,
            cap,
            tag: 0,
        }
    }

    #[test]
    fn single_uncapped_flow_gets_full_capacity() {
        let mut s = PsServer::new(2.0);
        s.add_flow(SimTime::ZERO, spec(4.0, f64::INFINITY));
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn capped_flow_limited_to_cap() {
        let mut s = PsServer::new(10.0);
        let id = s.add_flow(SimTime::ZERO, spec(4.0, 2.0));
        assert_eq!(s.flow_rate(id), Some(2.0));
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn break_point_behaviour_matches_paper() {
        // Paper Section IV-A: T = 60 MB/s per core, BW = 120 MB/s => b = 2.
        // With P <= 2 flows each attains T; with P = 4 each gets BW / 4.
        let bw = 120.0;
        let t = 60.0;
        let mut s = PsServer::new(bw);
        let a = s.add_flow(SimTime::ZERO, spec(600.0, t));
        let b = s.add_flow(SimTime::ZERO, spec(600.0, t));
        assert_eq!(s.flow_rate(a), Some(60.0));
        assert_eq!(s.flow_rate(b), Some(60.0));
        let c = s.add_flow(SimTime::ZERO, spec(600.0, t));
        let d = s.add_flow(SimTime::ZERO, spec(600.0, t));
        for id in [a, b, c, d] {
            assert_eq!(s.flow_rate(id), Some(30.0), "4 flows share BW equally");
        }
    }

    #[test]
    fn water_filling_redistributes_capped_slack() {
        // capacity 10, caps [1, inf, inf]: capped flow gets 1, others 4.5 each.
        let mut s = PsServer::new(10.0);
        let a = s.add_flow(SimTime::ZERO, spec(100.0, 1.0));
        let b = s.add_flow(SimTime::ZERO, spec(100.0, f64::INFINITY));
        let c = s.add_flow(SimTime::ZERO, spec(100.0, f64::INFINITY));
        assert_eq!(s.flow_rate(a), Some(1.0));
        assert_eq!(s.flow_rate(b), Some(4.5));
        assert_eq!(s.flow_rate(c), Some(4.5));
        assert!((s.total_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn underloaded_server_is_not_work_conserving_beyond_caps() {
        let mut s = PsServer::new(100.0);
        s.add_flow(SimTime::ZERO, spec(10.0, 3.0));
        s.add_flow(SimTime::ZERO, spec(10.0, 4.0));
        assert!((s.total_rate() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn completion_sequence_and_rate_rescaling() {
        // Two flows, demands 1 and 3, capacity 2, uncapped.
        // Phase 1: both at rate 1; flow A finishes at t=1.
        // Phase 2: B alone at rate 2 with 2 remaining; finishes at t=2.
        let mut s = PsServer::new(2.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 1.0,
                cap: f64::INFINITY,
                tag: 1,
            },
        );
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 3.0,
                cap: f64::INFINITY,
                tag: 2,
            },
        );
        let t1 = s.next_completion().unwrap();
        assert_eq!(t1, SimTime::from_secs(1.0));
        s.advance(t1);
        let done = s.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 1);
        let t2 = s.next_completion().unwrap();
        assert_eq!(t2, SimTime::from_secs(2.0));
        s.advance(t2);
        assert_eq!(s.take_completed()[0].1, 2);
        assert_eq!(s.active_flows(), 0);
        assert_eq!(s.next_completion(), None);
    }

    #[test]
    fn zero_demand_flow_completes_immediately() {
        let mut s = PsServer::new(1.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 0.0,
                cap: 1.0,
                tag: 42,
            },
        );
        assert_eq!(s.take_completed(), vec![(FlowId(0), 42)]);
        assert_eq!(s.active_flows(), 0);
    }

    #[test]
    fn remove_flow_returns_remaining() {
        let mut s = PsServer::new(1.0);
        let id = s.add_flow(SimTime::ZERO, spec(10.0, f64::INFINITY));
        let left = s.remove_flow(SimTime::from_secs(4.0), id);
        assert!((left.unwrap() - 6.0).abs() < 1e-9);
        assert!(s.remove_flow(SimTime::from_secs(4.0), id).is_none());
    }

    #[test]
    fn busy_time_and_served_units_accumulate() {
        let mut s = PsServer::new(2.0);
        s.add_flow(SimTime::ZERO, spec(4.0, f64::INFINITY));
        s.advance(SimTime::from_secs(2.0));
        s.take_completed();
        s.advance(SimTime::from_secs(5.0)); // idle period
        assert!((s.busy_time().as_secs() - 2.0).abs() < 1e-9);
        assert!((s.served_units() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_go_backwards() {
        let mut s = PsServer::new(1.0);
        s.advance(SimTime::from_secs(2.0));
        s.advance(SimTime::from_secs(1.0));
    }

    #[test]
    fn late_join_shares_fairly() {
        let mut s = PsServer::new(2.0);
        s.add_flow(
            SimTime::ZERO,
            FlowSpec {
                demand: 4.0,
                cap: f64::INFINITY,
                tag: 1,
            },
        );
        // At t=1, 2 units remain for flow 1; flow 2 joins with demand 2.
        s.add_flow(
            SimTime::from_secs(1.0),
            FlowSpec {
                demand: 2.0,
                cap: f64::INFINITY,
                tag: 2,
            },
        );
        // Both now at rate 1; both finish at t=3.
        assert_eq!(s.next_completion(), Some(SimTime::from_secs(3.0)));
        s.advance(SimTime::from_secs(3.0));
        assert_eq!(s.take_completed().len(), 2);
    }

    #[test]
    fn join_flips_a_capped_flow_to_fair_limited() {
        // capacity 10: one flow capped at 4 (fair 10), then joins push the
        // fair share below 4, flipping it. Threshold bookkeeping must start
        // the refill at the flipped position, not after it.
        let mut s = PsServer::new(10.0);
        let a = s.add_flow(SimTime::ZERO, spec(1e6, 4.0));
        assert_eq!(s.flow_rate(a), Some(4.0));
        let b = s.add_flow(SimTime::ZERO, spec(1e6, f64::INFINITY));
        assert_eq!(s.flow_rate(a), Some(4.0), "fair 5 still above cap 4");
        assert_eq!(s.flow_rate(b), Some(6.0));
        let c = s.add_flow(SimTime::ZERO, spec(1e6, f64::INFINITY));
        // fair = 10/3 < 4: flow a is now fair-limited.
        let fair = 10.0 / 3.0;
        assert_eq!(s.flow_rate(a), Some(fair));
        for id in [b, c] {
            assert!(s.flow_rate(id).unwrap() <= fair + 1e-12);
        }
        assert!((s.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn peak_flow_high_water_mark_tracks_and_resets() {
        let mut s = PsServer::new(10.0);
        let a = s.add_flow(SimTime::ZERO, spec(1.0, 1.0));
        let _b = s.add_flow(SimTime::ZERO, spec(1.0, 1.0));
        assert_eq!(s.peak_active_flows(), 2);
        s.remove_flow(SimTime::ZERO, a);
        assert_eq!(s.peak_active_flows(), 2, "peak survives removals");
        s.reset_peak();
        assert_eq!(s.peak_active_flows(), 1);
    }

    #[test]
    fn drain_completed_tags_is_equivalent_to_take_completed() {
        let mut s = PsServer::new(4.0);
        for tag in 10..14 {
            s.add_flow(
                SimTime::ZERO,
                FlowSpec {
                    demand: 1.0,
                    cap: 1.0,
                    tag,
                },
            );
        }
        s.advance(SimTime::from_secs(1.0));
        let mut tags = Vec::new();
        s.drain_completed_tags(&mut tags);
        assert_eq!(tags, vec![10, 11, 12, 13]);
        assert!(s.take_completed().is_empty(), "drain consumed the list");
    }

    #[test]
    fn no_zero_progress_livelock_on_ulp_residuals() {
        // Repeatedly advancing to `next_completion` must terminate even
        // when FP residue leaves a few ULPs of work: the quantum clause of
        // the shared finish predicate harvests such flows instead of
        // scheduling a completion at `now + ~0` forever.
        let mut s = PsServer::new(0.3);
        s.add_flow(SimTime::ZERO, spec(0.1, 0.07));
        s.add_flow(SimTime::ZERO, spec(0.2, f64::INFINITY));
        s.add_flow(SimTime::ZERO, spec(0.30000000000000004, f64::INFINITY));
        let mut steps = 0;
        let mut done = 0;
        while let Some(t) = s.next_completion() {
            s.advance(t);
            done += s.take_completed().len();
            steps += 1;
            assert!(steps < 50, "livelock: {steps} pumps, {done}/3 complete");
        }
        assert_eq!(done, 3);
        assert_eq!(s.active_flows(), 0);
    }

    #[test]
    fn next_completion_projection_uses_the_harvest_predicate() {
        // The projected completion instant must actually complete the flow
        // when advanced to — the projection and the harvest share one
        // finish predicate, so `advance(next_completion())` always makes
        // progress.
        let mut s = PsServer::new(1.0);
        s.add_flow(SimTime::ZERO, spec(1e9 + 0.1, f64::INFINITY));
        let t = s.next_completion().unwrap();
        s.advance(t);
        assert_eq!(s.take_completed().len(), 1);
    }

    /// One random operation on both implementations.
    #[derive(Debug, Clone)]
    enum Op {
        Add { demand: f64, cap: f64 },
        Remove(usize),
        Advance(f64),
        Query,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // (kind, demand-kind, demand, cap-kind, cap, remove-index, dt)
        (
            0u32..10,
            0u32..4,
            0.01f64..50.0,
            0u32..4,
            0.1f64..8.0,
            0usize..64,
            0.0f64..4.0,
        )
            .prop_map(|(kind, dk, d, ck, c, idx, dt)| match kind {
                0..=3 => Op::Add {
                    demand: match dk {
                        0 => 0.0, // zero-demand: completes immediately
                        1 => d * 1e4,
                        _ => d,
                    },
                    cap: match ck {
                        0 => f64::INFINITY,
                        1 => 1.0, // deliberate cap ties
                        _ => c,
                    },
                },
                4 | 5 => Op::Remove(idx),
                6..=8 => Op::Advance(dt),
                _ => Op::Query,
            })
    }

    proptest! {
        /// The incremental server is indistinguishable from the naive
        /// oracle: identical rates (to the bit), identical completion
        /// times (to the bit), identical completion sequences, and
        /// matching busy/served accounting, over random add/remove/advance
        /// sequences including cap ties and zero-demand flows.
        #[test]
        fn incremental_matches_naive_oracle(
            capacity in prop::sample::select(vec![1.0, 3.0, 10.0, 0.7, 64.0]),
            ops in proptest::collection::vec(op_strategy(), 1..60),
        ) {
            let mut fast = PsServer::new(capacity);
            let mut slow = NaivePsServer::new(capacity);
            let mut now = SimTime::ZERO;
            let mut live_ids: Vec<FlowId> = Vec::new();
            for op in ops {
                match op {
                    Op::Add { demand, cap } => {
                        let a = fast.add_flow(now, FlowSpec { demand, cap, tag: 7 });
                        let b = slow.add_flow(now, FlowSpec { demand, cap, tag: 7 });
                        prop_assert_eq!(a, b, "flow ids diverged");
                        live_ids.push(a);
                    }
                    Op::Remove(i) => {
                        if live_ids.is_empty() { continue; }
                        let id = live_ids[i % live_ids.len()];
                        let a = fast.remove_flow(now, id);
                        let b = slow.remove_flow(now, id);
                        match (a, b) {
                            (Some(x), Some(y)) =>
                                prop_assert_eq!(x.to_bits(), y.to_bits(), "residual demand"),
                            (None, None) => {}
                            (a, b) => prop_assert!(false, "remove diverged: {a:?} vs {b:?}"),
                        }
                    }
                    Op::Advance(dt) => {
                        now += SimDuration::from_secs(dt);
                        fast.advance(now);
                        slow.advance(now);
                    }
                    Op::Query => {
                        // exercise the cached next_completion twice
                        let _ = fast.next_completion();
                    }
                }
                // Completion streams must match exactly, order included.
                prop_assert_eq!(fast.take_completed(), slow.take_completed());
                prop_assert_eq!(fast.active_flows(), slow.active_flows());
                let (a, b) = (fast.next_completion(), slow.next_completion());
                match (a, b) {
                    (Some(x), Some(y)) =>
                        prop_assert_eq!(x.as_secs().to_bits(), y.as_secs().to_bits(),
                            "next_completion drifted: {} vs {}", x, y),
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "next_completion diverged: {a:?} vs {b:?}"),
                }
                for id in &live_ids {
                    let (ra, rb) = (fast.flow_rate(*id), slow.flow_rate(*id));
                    match (ra, rb) {
                        (Some(x), Some(y)) =>
                            prop_assert_eq!(x.to_bits(), y.to_bits(), "rate drifted"),
                        (None, None) => {}
                        (ra, rb) => prop_assert!(false, "rate diverged: {ra:?} vs {rb:?}"),
                    }
                }
                prop_assert_eq!(
                    fast.busy_time().as_secs().to_bits(),
                    slow.busy_time().as_secs().to_bits(),
                    "busy time drifted"
                );
                // `served` sums per-flow increments in different orders
                // (slab order vs hash order) — equal up to FP tolerance.
                let (sa, sb) = (fast.served_units(), slow.served_units());
                prop_assert!(
                    (sa - sb).abs() <= 1e-9 * sb.abs().max(1.0),
                    "served drifted: {sa} vs {sb}"
                );
            }
        }
    }
}
