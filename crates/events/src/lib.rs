//! Discrete-event simulation kernel for the Doppio toolset.
//!
//! This crate is the bottom layer of the Doppio reproduction stack. It provides
//! three building blocks that every other simulation crate is written against:
//!
//! * [`SimTime`] / [`SimDuration`] — the simulation clock, a thin wrapper over
//!   `f64` seconds with a total order so it can live in priority queues.
//! * [`Engine`] — a classic event-calendar engine, generic over a user "world"
//!   type `W`. Events are `FnOnce(&mut W, &mut Engine<W>)` closures, so event
//!   handlers can mutate the world and schedule/cancel further events.
//! * [`PsServer`] — a *processor-sharing* resource server with per-flow rate
//!   caps and water-filling rate assignment. Disks, NICs and any other
//!   capacity-shared resource in the simulator are instances of this server.
//!
//! The processor-sharing server is the piece that makes the paper's central
//! quantity — the break point `b = BW / T` after which CPU cores contend for
//! I/O bandwidth (Doppio, Section IV) — fall out of first principles instead
//! of being special-cased: when `P` flows each capped at per-stream rate `T`
//! share a server of capacity `BW`, every flow attains `T` while `P <= b` and
//! `BW / P` afterwards.
//!
//! # Example
//!
//! ```
//! use doppio_events::{Engine, SimTime};
//!
//! struct World { ticks: u32 }
//!
//! let mut engine: Engine<World> = Engine::new();
//! let mut world = World { ticks: 0 };
//! engine.schedule_at(SimTime::from_secs(1.0), |w: &mut World, e| {
//!     w.ticks += 1;
//!     e.schedule_in(SimTime::from_secs(2.0).as_secs(), |w: &mut World, _| w.ticks += 1);
//! });
//! engine.run(&mut world);
//! assert_eq!(world.ticks, 2);
//! assert_eq!(engine.now(), SimTime::from_secs(3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod psserver;
mod time;
mod units;

pub use engine::{Engine, EventId};
pub use psserver::{FlowId, FlowSpec, PsServer};
pub use time::{SimDuration, SimTime};
pub use units::{Bytes, Rate};
