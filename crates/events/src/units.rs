//! Data-size and throughput newtypes shared by every Doppio crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;
const TIB: u64 = 1024 * GIB;

/// A data size in bytes.
///
/// All data volumes in the toolset (HDFS files, shuffle traffic, cached RDD
/// partitions, I/O request sizes) are expressed as `Bytes` so that sizes can
/// never be confused with times or rates ([C-NEWTYPE]).
///
/// The binary-prefix constructors match how the paper quotes sizes
/// ("128 MB HDFS block", "122 GB input BAM").
///
/// # Example
///
/// ```
/// use doppio_events::Bytes;
/// let block = Bytes::from_mib(128);
/// assert_eq!(block.as_u64(), 128 * 1024 * 1024);
/// assert_eq!(Bytes::from_gib(1) / block, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size of `n` KiB.
    pub const fn from_kib(n: u64) -> Self {
        Bytes(n * KIB)
    }

    /// Creates a size of `n` MiB.
    pub const fn from_mib(n: u64) -> Self {
        Bytes(n * MIB)
    }

    /// Creates a size of `n` GiB.
    pub const fn from_gib(n: u64) -> Self {
        Bytes(n * GIB)
    }

    /// Creates a size of `n` TiB.
    pub const fn from_tib(n: u64) -> Self {
        Bytes(n * TIB)
    }

    /// Creates a size from a fractional GiB count (e.g. dataset sizes quoted
    /// as "0.93 TB" in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `gib` is negative or not finite.
    pub fn from_gib_f64(gib: f64) -> Self {
        assert!(
            gib.is_finite() && gib >= 0.0,
            "size must be finite and non-negative, got {gib}"
        );
        Bytes((gib * GIB as f64).round() as u64)
    }

    /// Creates a size from a fractional MiB count.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is negative or not finite.
    pub fn from_mib_f64(mib: f64) -> Self {
        assert!(
            mib.is_finite() && mib >= 0.0,
            "size must be finite and non-negative, got {mib}"
        );
        Bytes((mib * MIB as f64).round() as u64)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` for rate arithmetic.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in KiB.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / KIB as f64
    }

    /// Size in MiB.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Size in GiB.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// True when the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the size by a non-negative factor, rounding to bytes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }

    /// Number of `chunk`-sized pieces needed to cover this size (ceiling
    /// division) — e.g. the number of HDFS blocks of a file.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn div_ceil_by(self, chunk: Bytes) -> u64 {
        assert!(chunk.0 > 0, "chunk size must be non-zero");
        self.0.div_ceil(chunk.0)
    }

    /// The smaller of two sizes.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(rhs.0)
                .expect("Bytes subtraction underflow"),
        )
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Div<Bytes> for Bytes {
    type Output = u64;
    fn div(self, rhs: Bytes) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TIB {
            write!(f, "{:.2} TiB", b as f64 / TIB as f64)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A throughput in bytes per second.
///
/// Used for device effective bandwidths (`BW` in the paper's Equation 1),
/// per-stream throughput caps (`T`), and network link speeds.
///
/// # Example
///
/// ```
/// use doppio_events::{Bytes, Rate};
/// let bw = Rate::mib_per_sec(480.0); // SSD shuffle read at 30 KB requests
/// let t = bw.time_for(Bytes::from_gib(1));
/// assert!((t.as_secs() - 1024.0 / 480.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rate(f64);

impl Rate {
    /// Zero throughput.
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or NaN.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(
            !bps.is_nan() && bps >= 0.0,
            "rate must be non-negative, got {bps}"
        );
        Rate(bps)
    }

    /// Creates a rate from MiB per second (the unit the paper uses
    /// throughout: "15 MB/s for HDD and 480 MB/s for SSD").
    pub fn mib_per_sec(mibps: f64) -> Self {
        Self::bytes_per_sec(mibps * MIB as f64)
    }

    /// Creates a rate from GiB per second.
    pub fn gib_per_sec(gibps: f64) -> Self {
        Self::bytes_per_sec(gibps * GIB as f64)
    }

    /// Creates a rate from gigabits per second (network link speeds).
    pub fn gbit_per_sec(gbps: f64) -> Self {
        Self::bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Raw bytes per second.
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Rate in MiB per second.
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 / MIB as f64
    }

    /// Time needed to move `bytes` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero and `bytes` is non-zero.
    pub fn time_for(self, bytes: Bytes) -> crate::SimDuration {
        if bytes.is_zero() {
            return crate::SimDuration::ZERO;
        }
        assert!(self.0 > 0.0, "cannot transfer {bytes} at zero rate");
        crate::SimDuration::from_secs(bytes.as_f64() / self.0)
    }

    /// The smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// True when the rate is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        Rate(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

impl Div<Rate> for Rate {
    type Output = f64;
    fn div(self, rhs: Rate) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MiB/s", self.as_mib_per_sec())
    }
}

impl doppio_engine::Fingerprintable for Bytes {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_u64(self.0);
    }
}

impl doppio_engine::Fingerprintable for Rate {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_f64(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_mib(), 1024.0);
        assert_eq!(Bytes::from_tib(2).as_gib(), 2048.0);
        assert_eq!(Bytes::from_gib_f64(0.5), Bytes::from_mib(512));
    }

    #[test]
    fn block_count_math_matches_paper() {
        // Paper Section III-C2: M = 122 GB / 128 MB per HDFS block = 973 mappers.
        let file = Bytes::from_gib(122);
        let block = Bytes::from_mib(128);
        assert_eq!(file.div_ceil_by(block), 976); // exact binary division
                                                  // The paper computes 122*1024/128 = 976 but quotes 973 after header
                                                  // blocks; we assert the arithmetic here, the workload crate encodes 973.
    }

    #[test]
    fn scale_and_arith() {
        let d = Bytes::from_gib(122);
        assert_eq!(d.scale(2.0), Bytes::from_gib(244));
        assert_eq!(d + d, Bytes::from_gib(244));
        assert_eq!(d * 3, Bytes::from_gib(366));
        assert_eq!(Bytes::from_gib(4) / 4, Bytes::from_gib(1));
        assert_eq!(
            Bytes::from_mib(10).saturating_sub(Bytes::from_mib(20)),
            Bytes::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Bytes::from_mib(1) - Bytes::from_mib(2);
    }

    #[test]
    fn rate_time_for() {
        let r = Rate::mib_per_sec(100.0);
        let t = r.time_for(Bytes::from_mib(250));
        assert!((t.as_secs() - 2.5).abs() < 1e-12);
        assert_eq!(Rate::ZERO.time_for(Bytes::ZERO).as_secs(), 0.0);
    }

    #[test]
    fn rate_units() {
        assert!((Rate::gbit_per_sec(10.0).as_bytes_per_sec() - 1.25e9).abs() < 1.0);
        assert!((Rate::gib_per_sec(1.0).as_mib_per_sec() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty_and_scaled() {
        assert_eq!(Bytes::from_mib(128).to_string(), "128.00 MiB");
        assert_eq!(Bytes::new(100).to_string(), "100 B");
        assert_eq!(Bytes::from_gib(122).to_string(), "122.00 GiB");
        assert_eq!(Rate::mib_per_sec(15.0).to_string(), "15.0 MiB/s");
    }

    #[test]
    fn sum_of_bytes() {
        let total: Bytes = [Bytes::from_mib(1), Bytes::from_mib(2)].into_iter().sum();
        assert_eq!(total, Bytes::from_mib(3));
    }
}
