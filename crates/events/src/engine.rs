//! The event-calendar engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Multiply-mix hasher for the engine's `EventId`-keyed tables.
///
/// Event ids are sequential `u64`s under our own control, so SipHash's
/// flood resistance buys nothing here while its per-lookup cost sits on
/// the hottest scheduling path. A fixed odd multiplier with a high-bits
/// finish (splitmix64-style) spreads sequential keys across buckets and
/// is fully deterministic across processes — no per-process random state,
/// so event-calendar behaviour can never vary between runs.
#[derive(Default)]
struct EventIdHasher(u64);

impl Hasher for EventIdHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; tolerate other widths anyway.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type EventIdMap<V> = std::collections::HashMap<EventId, V, BuildHasherDefault<EventIdHasher>>;
type EventIdSet = HashSet<EventId, BuildHasherDefault<EventIdHasher>>;

type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A discrete-event engine generic over a user-defined world type `W`.
///
/// Events are closures receiving `&mut W` and `&mut Engine<W>`; handlers can
/// therefore mutate simulation state and schedule or cancel further events.
/// Events at equal times fire in scheduling (FIFO) order, which keeps
/// simulations deterministic.
///
/// # Example
///
/// ```
/// use doppio_events::{Engine, SimTime};
/// let mut engine: Engine<Vec<u32>> = Engine::new();
/// let mut log = Vec::new();
/// engine.schedule_at(SimTime::from_secs(2.0), |w: &mut Vec<u32>, _| w.push(2));
/// engine.schedule_at(SimTime::from_secs(1.0), |w: &mut Vec<u32>, _| w.push(1));
/// engine.run(&mut log);
/// assert_eq!(log, vec![1, 2]);
/// ```
pub struct Engine<W> {
    now: SimTime,
    queue: BinaryHeap<Reverse<EntryKey>>,
    // Actions are stored separately from the heap key so the heap ordering
    // does not need to reason about the (non-Ord) closures.
    actions: EventIdMap<(SimTime, Action<W>)>,
    cancelled: EventIdSet,
    next_id: u64,
    fired: u64,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    at: SimTime,
    id: EventId,
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and an empty
    /// calendar.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            actions: EventIdMap::default(),
            cancelled: EventIdSet::default(),
            next_id: 0,
            fired: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (useful for bounding runaway sims and
    /// for micro-benchmarks).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending (excluding cancelled ones).
    pub fn pending(&self) -> usize {
        self.actions.len()
    }

    /// Schedules `action` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.queue.push(Reverse(EntryKey { at, id }));
        self.actions.insert(id, (at, Box::new(action)));
        id
    }

    /// Schedules `action` to fire `delay_secs` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay_secs` is negative or NaN.
    pub fn schedule_in<F>(&mut self, delay_secs: f64, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now + SimDuration::from_secs(delay_secs), action)
    }

    /// Schedules `action` to fire after `delay`.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns `true` if the event existed and had
    /// not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.actions.remove(&id).is_some() {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Fires the next pending event, advancing the clock to it. Returns
    /// `false` when the calendar is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(Reverse(key)) = self.queue.pop() {
            if self.cancelled.remove(&key.id) {
                continue;
            }
            let Some((at, action)) = self.actions.remove(&key.id) else {
                continue;
            };
            debug_assert_eq!(at, key.at);
            self.now = key.at;
            self.fired += 1;
            action(world, self);
            return true;
        }
        false
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the calendar is empty or the clock would pass `until`;
    /// events at exactly `until` do fire. Returns the number of events fired.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> u64 {
        let start = self.fired;
        loop {
            match self.peek_time() {
                Some(t) if t <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
        self.fired - start
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(key)) = self.queue.peek() {
            if self.cancelled.contains(&key.id) || !self.actions.contains_key(&key.id) {
                let Reverse(key) = self.queue.pop().expect("peeked entry present");
                self.cancelled.remove(&key.id);
                continue;
            }
            return Some(key.at);
        }
        None
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.actions.len())
            .field("fired", &self.fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<Vec<u32>> = Engine::new();
        let mut w = Vec::new();
        e.schedule_at(SimTime::from_secs(3.0), |w: &mut Vec<u32>, _| w.push(3));
        e.schedule_at(SimTime::from_secs(1.0), |w: &mut Vec<u32>, _| w.push(1));
        e.schedule_at(SimTime::from_secs(2.0), |w: &mut Vec<u32>, _| w.push(2));
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_secs(3.0));
        assert_eq!(e.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_fifo_order() {
        let mut e: Engine<Vec<u32>> = Engine::new();
        let mut w = Vec::new();
        for i in 0..10 {
            e.schedule_at(SimTime::from_secs(1.0), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        e.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut e: Engine<u32> = Engine::new();
        let mut w = 0u32;
        fn tick(w: &mut u32, e: &mut Engine<u32>) {
            *w += 1;
            if *w < 5 {
                e.schedule_in(1.0, tick);
            }
        }
        e.schedule_in(1.0, tick);
        e.run(&mut w);
        assert_eq!(w, 5);
        assert_eq!(e.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut e: Engine<u32> = Engine::new();
        let mut w = 0u32;
        let id = e.schedule_in(1.0, |w: &mut u32, _| *w += 1);
        e.schedule_in(2.0, |w: &mut u32, _| *w += 10);
        assert!(e.cancel(id));
        assert!(!e.cancel(id), "double cancel reports false");
        e.run(&mut w);
        assert_eq!(w, 10);
        assert_eq!(e.events_fired(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut e: Engine<Vec<u32>> = Engine::new();
        let mut w = Vec::new();
        e.schedule_at(SimTime::from_secs(1.0), |w: &mut Vec<u32>, _| w.push(1));
        e.schedule_at(SimTime::from_secs(2.0), |w: &mut Vec<u32>, _| w.push(2));
        e.schedule_at(SimTime::from_secs(3.0), |w: &mut Vec<u32>, _| w.push(3));
        let fired = e.run_until(&mut w, SimTime::from_secs(2.0));
        assert_eq!(fired, 2);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        let mut w = 0;
        e.schedule_in(5.0, |_, _| {});
        e.run(&mut w);
        e.schedule_at(SimTime::from_secs(1.0), |_, _| {});
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.schedule_in(1.0, |_, _| {});
        e.schedule_in(2.0, |_, _| {});
        e.cancel(id);
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(2.0)));
    }
}
