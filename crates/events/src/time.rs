//! The simulation clock: totally ordered wrappers over `f64` seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulation time line, in seconds since simulation start.
///
/// `SimTime` wraps an `f64` but provides a *total* order (via
/// [`f64::total_cmp`]) so values can be stored in ordered containers such as
/// the event calendar. Constructors reject NaN, so the total order coincides
/// with the numeric order for every observable value.
///
/// # Example
///
/// ```
/// use doppio_events::SimTime;
/// let t = SimTime::from_secs(1.5) + SimTime::from_secs(0.5).as_duration();
/// assert_eq!(t.as_secs(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

/// A span of simulation time, in seconds.
///
/// The distinction from [`SimTime`] mirrors `std::time::Instant` vs
/// `std::time::Duration`: points subtract to spans, and spans add to points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of the simulation time line.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the number of seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns this time point as a duration since the origin.
    pub fn as_duration(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two time points.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a span of `mins` minutes.
    ///
    /// # Panics
    ///
    /// Panics if `mins` is NaN or negative.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Returns the span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the span in minutes (the unit most Doppio figures report).
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the span in hours (the unit cloud billing uses).
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.1}min", self.0 / 60.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!(((t + d) - t).as_secs(), 2.5);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!((a - b).as_secs(), 0.0);
        assert_eq!(
            (SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0)).as_secs(),
            0.0
        );
    }

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.0),
                SimTime::from_secs(3.0)
            ]
        );
        assert_eq!(
            SimTime::from_secs(5.0).max(SimTime::from_secs(2.0)),
            SimTime::from_secs(5.0)
        );
        assert_eq!(
            SimTime::from_secs(5.0).min(SimTime::from_secs(2.0)),
            SimTime::from_secs(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn unit_conversions() {
        let d = SimDuration::from_mins(2.0);
        assert_eq!(d.as_secs(), 120.0);
        assert_eq!(d.as_mins(), 2.0);
        assert!((SimDuration::from_secs(7200.0).as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(90.0).to_string(), "1.5min");
        assert_eq!(SimDuration::from_secs(1.5).to_string(), "1.500s");
    }
}
