//! Property-based tests for the event kernel invariants.

use doppio_events::{Engine, FlowSpec, PsServer, SimTime};
use proptest::prelude::*;

proptest! {
    /// Water-filling invariants: no flow exceeds its cap, total rate never
    /// exceeds capacity, and the assignment is work-conserving (total rate
    /// equals min(capacity, sum of caps)).
    #[test]
    fn water_filling_invariants(
        capacity in 0.1f64..1000.0,
        caps in prop::collection::vec(0.01f64..500.0, 1..40),
    ) {
        let mut s = PsServer::new(capacity);
        let ids: Vec<_> = caps
            .iter()
            .map(|&c| s.add_flow(SimTime::ZERO, FlowSpec { demand: 1e9, cap: c, tag: 0 }))
            .collect();
        let total: f64 = s.total_rate();
        let cap_sum: f64 = caps.iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        prop_assert!((total - capacity.min(cap_sum)).abs() < 1e-6 * capacity.max(cap_sum));
        for (id, &cap) in ids.iter().zip(&caps) {
            let r = s.flow_rate(*id).unwrap();
            prop_assert!(r <= cap + 1e-9);
            prop_assert!(r >= 0.0);
        }
    }

    /// Max–min fairness: uncapped flows all receive the same rate, and no
    /// capped flow receives more than an uncapped one.
    #[test]
    fn max_min_fairness(
        capacity in 1.0f64..100.0,
        caps in prop::collection::vec(0.1f64..50.0, 1..20),
        uncapped in 1usize..10,
    ) {
        let mut s = PsServer::new(capacity);
        let capped_ids: Vec<_> = caps
            .iter()
            .map(|&c| s.add_flow(SimTime::ZERO, FlowSpec { demand: 1e9, cap: c, tag: 0 }))
            .collect();
        let free_ids: Vec<_> = (0..uncapped)
            .map(|_| s.add_flow(SimTime::ZERO, FlowSpec { demand: 1e9, cap: f64::INFINITY, tag: 1 }))
            .collect();
        let free_rates: Vec<f64> = free_ids.iter().map(|id| s.flow_rate(*id).unwrap()).collect();
        let r0 = free_rates[0];
        for r in &free_rates {
            prop_assert!((r - r0).abs() < 1e-9, "uncapped flows share equally");
        }
        for id in &capped_ids {
            prop_assert!(s.flow_rate(*id).unwrap() <= r0 + 1e-9);
        }
    }

    /// Total service delivered equals total demand once all flows complete,
    /// and completion times are consistent with capacity (makespan >= total
    /// demand / capacity).
    #[test]
    fn conservation_of_work(
        capacity in 0.5f64..50.0,
        demands in prop::collection::vec(0.1f64..20.0, 1..15),
    ) {
        let mut s = PsServer::new(capacity);
        for &d in &demands {
            s.add_flow(SimTime::ZERO, FlowSpec { demand: d, cap: f64::INFINITY, tag: 0 });
        }
        let mut completed = 0usize;
        let mut last = SimTime::ZERO;
        while let Some(t) = s.next_completion() {
            prop_assert!(t >= last);
            last = t;
            s.advance(t);
            completed += s.take_completed().len();
        }
        prop_assert_eq!(completed, demands.len());
        let total: f64 = demands.iter().sum();
        prop_assert!((s.served_units() - total).abs() < 1e-6 * total);
        let lower_bound = total / capacity;
        prop_assert!(last.as_secs() >= lower_bound - 1e-6);
        // With uncapped identical-arrival flows the server is always busy, so
        // the makespan is exactly the work divided by capacity.
        prop_assert!((last.as_secs() - lower_bound).abs() < 1e-6 * lower_bound.max(1.0));
    }

    /// Engine: events fire in non-decreasing time order regardless of the
    /// insertion order.
    #[test]
    fn engine_orders_events(times in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let mut e: Engine<Vec<f64>> = Engine::new();
        let mut w: Vec<f64> = Vec::new();
        for &t in &times {
            e.schedule_at(SimTime::from_secs(t), move |w: &mut Vec<f64>, _| w.push(t));
        }
        e.run(&mut w);
        prop_assert_eq!(w.len(), times.len());
        for pair in w.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    /// PsServer progress is insensitive to how often `advance` is called
    /// (integration is exact between mutations).
    #[test]
    fn advance_granularity_invariance(
        demand in 1.0f64..100.0,
        steps in 1usize..20,
    ) {
        let capacity = 2.0;
        // Reference: single advance to completion.
        let mut a = PsServer::new(capacity);
        a.add_flow(SimTime::ZERO, FlowSpec { demand, cap: f64::INFINITY, tag: 0 });
        let t_done = a.next_completion().unwrap();

        // Chopped: advance in many small steps.
        let mut b = PsServer::new(capacity);
        b.add_flow(SimTime::ZERO, FlowSpec { demand, cap: f64::INFINITY, tag: 0 });
        for i in 1..=steps {
            let t = SimTime::from_secs(t_done.as_secs() * i as f64 / steps as f64);
            b.advance(t);
        }
        prop_assert_eq!(b.take_completed().len(), 1);
        prop_assert!((b.served_units() - demand).abs() < 1e-6 * demand);
    }
}
