//! Workload definitions for the Doppio reproduction.
//!
//! One module per application the paper evaluates:
//!
//! | module | paper section | character |
//! |---|---|---|
//! | [`gatk4`] | §II-B, §III, §V-A | genome pipeline: shuffle-heavy + uncacheable RDD |
//! | [`lr`] | §V-B1 | iterative ML, cached (small) / disk-persisted (large) |
//! | [`svm`] | §V-B2 | iterative ML with a shuffling `subtract` phase |
//! | [`pagerank`] | §V-B3 | iterative graph, 420 GB working set persists to disk |
//! | [`triangle`] | §V-B4 | graph with a 396 GB canonicalization shuffle |
//! | [`terasort`] | §V-B5 | pure shuffle-heavy sort |
//! | [`sql`] | §VII-A | Ousterhout-style scan-heavy SQL (the CPU-bound counterpoint) |
//!
//! Every module exposes a `Params` struct with two constructors —
//! `Params::paper()` (the exact sizes the paper reports) and
//! `Params::scaled_down()` (a 1/16-ish version for fast tests) — plus an
//! `app(&Params) -> App` function building the RDD lineage.
//!
//! Compute-cost hints are calibrated from the λ values the paper measures
//! (`λ = t_task / t_io`, Section IV-A) via [`doppio_sparksim::Cost::for_lambda`];
//! data volumes are the paper's (Table IV for GATK4, §V-B prose for the
//! rest). The [`genome`] module documents the synthetic stand-in for the
//! HCC1954 whole-genome input we obviously cannot ship.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gatk4;
pub mod genome;
pub mod lr;
pub mod pagerank;
pub mod sql;
pub mod svm;
pub mod terasort;
pub mod triangle;

use doppio_sparksim::App;

/// The six applications, for harnesses that iterate over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// GATK4 genome pipeline.
    Gatk4,
    /// Logistic Regression (small, memory-cached dataset).
    LrSmall,
    /// Logistic Regression (large, disk-persisted dataset).
    LrLarge,
    /// Support Vector Machine.
    Svm,
    /// PageRank.
    PageRank,
    /// Triangle Count.
    TriangleCount,
    /// Terasort.
    Terasort,
}

impl Workload {
    /// All workloads in the paper's presentation order.
    pub const ALL: [Workload; 7] = [
        Workload::Gatk4,
        Workload::LrSmall,
        Workload::LrLarge,
        Workload::Svm,
        Workload::PageRank,
        Workload::TriangleCount,
        Workload::Terasort,
    ];

    /// The paper's name for the workload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Gatk4 => "GATK4",
            Workload::LrSmall => "LR-small",
            Workload::LrLarge => "LR-large",
            Workload::Svm => "SVM",
            Workload::PageRank => "PageRank",
            Workload::TriangleCount => "TriangleCount",
            Workload::Terasort => "Terasort",
        }
    }

    /// Builds the full-scale (paper-parameter) application.
    pub fn paper_app(self) -> App {
        match self {
            Workload::Gatk4 => gatk4::app(&gatk4::Params::paper()),
            Workload::LrSmall => lr::app(&lr::Params::paper_small()),
            Workload::LrLarge => lr::app(&lr::Params::paper_large()),
            Workload::Svm => svm::app(&svm::Params::paper()),
            Workload::PageRank => pagerank::app(&pagerank::Params::paper()),
            Workload::TriangleCount => triangle::app(&triangle::Params::paper()),
            Workload::Terasort => terasort::app(&terasort::Params::paper()),
        }
    }

    /// Builds a scaled-down application suitable for fast tests.
    pub fn scaled_app(self) -> App {
        match self {
            Workload::Gatk4 => gatk4::app(&gatk4::Params::scaled_down()),
            Workload::LrSmall => lr::app(&lr::Params::scaled_small()),
            Workload::LrLarge => lr::app(&lr::Params::scaled_large()),
            Workload::Svm => svm::app(&svm::Params::scaled_down()),
            Workload::PageRank => pagerank::app(&pagerank::Params::scaled_down()),
            Workload::TriangleCount => triangle::app(&triangle::Params::scaled_down()),
            Workload::Terasort => terasort::app(&terasort::Params::scaled_down()),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds() {
        for w in Workload::ALL {
            let app = w.scaled_app();
            assert!(!app.jobs().is_empty(), "{w} must define jobs");
            assert!(!w.name().is_empty());
        }
    }

    #[test]
    fn paper_apps_build_too() {
        for w in Workload::ALL {
            let app = w.paper_app();
            assert!(app.num_rdds() > 0, "{w}");
        }
    }
}
