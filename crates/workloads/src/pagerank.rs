//! PageRank (paper Section V-B3).
//!
//! GraphX PageRank over a 20M-vertex graph in 4800 partitions: a
//! `graphLoader` phase (shuffling canonicalization of the edge list,
//! then caching the graph), ten `iteration`s, and a `saveAsTextFile`.
//!
//! The cached graph RDD deserializes to ≈420 GB — more than the cluster's
//! 360 GB of storage memory — so a slice of it persists in Spark-local and
//! every iteration re-reads that slice from disk (2.2× HDD/SSD gap on the
//! iteration phase, Fig. 10). Our simulator reproduces exactly that
//! persist-read mechanism; the per-iteration rank-message shuffle (a few
//! hundred MB of tiny segments whose cost GraphX hides with fetch
//! consolidation) is folded into the iteration compute budget, as
//! documented in DESIGN.md.

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec, StorageLevel};

/// PageRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Millions of vertices (paper: 20).
    pub vertices_m: u64,
    /// Serialized edge/graph bytes on HDFS.
    pub edges_bytes: Bytes,
    /// Deserialized expansion of the cached graph (420 GB / 120 GB = 3.5).
    pub mem_expansion: f64,
    /// Graph partitions (paper: 4800).
    pub partitions: u32,
    /// Rank iterations (paper: 10).
    pub iterations: u32,
    /// Bytes written by `saveAsTextFile`.
    pub output_bytes: Bytes,
}

impl Params {
    /// The paper's dataset: 20M vertices, 4800 partitions, 10 iterations,
    /// a 420 GB cached working set.
    pub fn paper() -> Self {
        Params {
            vertices_m: 20,
            edges_bytes: Bytes::from_gib(120),
            mem_expansion: 3.5,
            partitions: 4800,
            iterations: 10,
            output_bytes: Bytes::from_gib(4),
        }
    }

    /// A small version for tests (still overflows a 2-node test cluster's
    /// 72 GB pool so the persist path is exercised).
    pub fn scaled_down() -> Self {
        Params {
            vertices_m: 4,
            edges_bytes: Bytes::from_gib(24),
            mem_expansion: 3.5,
            partitions: 480,
            iterations: 3,
            output_bytes: Bytes::from_gib(1),
        }
    }
}

/// Per-iteration rank/message CPU per MiB of graph data (calibrated so the
/// SSD iteration is compute-bound and the HDD one persist-read-bound at
/// roughly the paper's 2.2× gap).
const RANK_SECS_PER_MIB: f64 = 0.03;

/// Builds the PageRank application.
pub fn app(params: &Params) -> App {
    let mut b = AppBuilder::new("PageRank");
    let edges = b.hdfs_source("edges", "/pr/edges", params.edges_bytes);
    // graphLoader: partition + canonicalize the edges (one shuffle), then
    // cache the resulting graph.
    let graph = b.shuffle_op(
        edges,
        "graphLoader",
        "partitionBy",
        ShuffleSpec::reducers(params.partitions),
        Cost::per_mib(0.002),
        Cost::for_lambda(2.0, Rate::mib_per_sec(60.0)),
        1.0,
        1.0,
    );
    b.persist(graph, StorageLevel::MemoryAndDisk, params.mem_expansion);
    b.count(graph, "graphLoader-cache", Cost::ZERO);
    for _ in 0..params.iterations {
        b.count(graph, "iteration", Cost::per_mib(RANK_SECS_PER_MIB));
    }
    let ranks = b.map(
        graph,
        "ranks",
        Cost::per_mib(0.001),
        params.output_bytes.as_f64() / params.edges_bytes.as_f64(),
    );
    b.save_as_hadoop_file(ranks, "saveAsTextFile", "/pr/ranks");
    b.build().expect("PageRank defines jobs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(&Params::scaled_down()))
            .expect("PageRank simulates")
    }

    #[test]
    fn phase_structure() {
        let r = run(HybridConfig::SsdSsd);
        assert!(r.stage("graphLoader").is_some(), "shuffle map stage");
        assert!(r.stage("graphLoader-cache").is_some());
        assert_eq!(r.stages_named("iteration").count(), 3);
        assert!(r.stage("saveAsTextFile").is_some());
    }

    #[test]
    fn working_set_overflows_memory() {
        // 24 GiB x 3.5 = 84 GiB deserialized > 72 GiB pool.
        let r = run(HybridConfig::SsdSsd);
        let cache_stage = r.stage("graphLoader-cache").unwrap();
        assert!(!cache_stage.channel_bytes(IoChannel::PersistWrite).is_zero());
        for it in r.stages_named("iteration") {
            assert!(!it.channel_bytes(IoChannel::PersistRead).is_zero());
        }
    }

    #[test]
    fn iteration_gap_is_moderate() {
        // Paper Fig 10: 2.2x on the iteration phase — much smaller than the
        // shuffle-heavy workloads because only the overflow slice hits disk.
        let ssd = run(HybridConfig::SsdSsd);
        let hdd = run(HybridConfig::SsdHdd);
        let ratio = hdd.time_in("iteration").as_secs() / ssd.time_in("iteration").as_secs();
        assert!(
            ratio > 1.2 && ratio < 5.0,
            "iteration HDD/SSD = {ratio:.1}x (paper: 2.2x)"
        );
    }

    #[test]
    fn save_writes_replicated_output() {
        let r = run(HybridConfig::SsdSsd);
        let save = r.stage("saveAsTextFile").unwrap();
        let w = save.channel_bytes(IoChannel::HdfsWrite);
        assert!(
            (w.as_gib() - 2.0).abs() < 0.1,
            "1 GiB x replication 2 = {w}"
        );
    }
}
