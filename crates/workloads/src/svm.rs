//! Support Vector Machine (paper Section V-B2).
//!
//! Three phases: `dataValidator` (parse + cache 82 GB), ten `iteration`s
//! over the memory-cached RDD, and a shuffling `subtract` phase moving
//! 170 GB through the Spark-local directory (6.2× HDD/SSD gap, Fig. 9).

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec, StorageLevel};

/// SVM parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Millions of samples (paper: 12M × 1000 features).
    pub samples_m: u64,
    /// Cached RDD size read by each iteration.
    pub cached_bytes: Bytes,
    /// Total shuffle volume of the subtract phase.
    pub shuffle_bytes: Bytes,
    /// Reducer partitions (paper: 1200).
    pub partitions: u32,
    /// Gradient iterations (paper: 10).
    pub iterations: u32,
}

impl Params {
    /// The paper's dataset: 12M samples, 82 GB cached, 170 GB shuffle,
    /// 1200 partitions, 10 iterations.
    pub fn paper() -> Self {
        Params {
            samples_m: 12,
            cached_bytes: Bytes::from_gib(82),
            shuffle_bytes: Bytes::from_gib(170),
            partitions: 1200,
            iterations: 10,
        }
    }

    /// A 1/8-scale version for tests.
    pub fn scaled_down() -> Self {
        Params {
            samples_m: 2,
            cached_bytes: Bytes::from_gib(10),
            shuffle_bytes: Bytes::from_gib(21),
            partitions: 150,
            iterations: 3,
        }
    }
}

/// Builds the SVM application.
pub fn app(params: &Params) -> App {
    let shuffle_ratio = params.shuffle_bytes.as_f64() / params.cached_bytes.as_f64();
    let mut b = AppBuilder::new("SVM");
    let src = b.hdfs_source("samples", "/svm/input", params.cached_bytes);
    let parsed = b.map(src, "parsedData", Cost::per_mib(0.001), 1.0);
    b.persist(parsed, StorageLevel::MemoryAndDisk, 1.0);
    b.count(parsed, "dataValidator", Cost::ZERO);
    for _ in 0..params.iterations {
        b.count(parsed, "iteration", Cost::per_mib(0.02));
    }
    // The subtract phase: a wide dependency through Spark-local.
    let sub = b.shuffle_op(
        parsed,
        "subtract",
        "subtract",
        ShuffleSpec::reducers(params.partitions),
        Cost::ZERO,
        Cost::for_lambda(2.0, Rate::mib_per_sec(60.0)),
        shuffle_ratio,
        0.1,
    );
    b.count(sub, "subtract-result", Cost::ZERO);
    b.build().expect("SVM defines jobs")
}

/// Total time of the subtract phase (map stage + result stage), matching
/// the paper's Fig. 9 "subtract" bar.
pub fn subtract_time(run: &doppio_sparksim::AppRun) -> doppio_events::SimDuration {
    run.time_in("subtract") + run.time_in("subtract-result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(&Params::scaled_down()))
            .expect("SVM simulates")
    }

    #[test]
    fn phase_structure() {
        let r = run(HybridConfig::SsdSsd);
        assert!(r.stage("dataValidator").is_some());
        assert_eq!(r.stages_named("iteration").count(), 3);
        assert!(r.stage("subtract").is_some());
        assert!(r.stage("subtract-result").is_some());
    }

    #[test]
    fn shuffle_volume_matches_params() {
        let r = run(HybridConfig::SsdSsd);
        let p = Params::scaled_down();
        let w = r
            .stage("subtract")
            .unwrap()
            .channel_bytes(IoChannel::ShuffleWrite);
        assert!((w.as_f64() - p.shuffle_bytes.as_f64()).abs() / p.shuffle_bytes.as_f64() < 0.01);
        let rd = r
            .stage("subtract-result")
            .unwrap()
            .channel_bytes(IoChannel::ShuffleRead);
        assert!((rd.as_f64() - p.shuffle_bytes.as_f64()).abs() / p.shuffle_bytes.as_f64() < 0.01);
    }

    #[test]
    fn iterations_are_memory_resident() {
        let r = run(HybridConfig::SsdSsd);
        for it in r.stages_named("iteration") {
            assert!(it.channel_bytes(IoChannel::PersistRead).is_zero());
        }
    }

    #[test]
    fn subtract_is_much_slower_on_hdd_local() {
        // Paper Fig 9: 6.2x on the subtract phase.
        let ssd = run(HybridConfig::SsdSsd);
        let hdd = run(HybridConfig::SsdHdd);
        let ratio = subtract_time(&hdd).as_secs() / subtract_time(&ssd).as_secs();
        assert!(ratio > 3.0, "subtract HDD/SSD = {ratio:.1}x (paper: 6.2x)");
        // Iterations are unaffected by the local device.
        let it_ratio = hdd.time_in("iteration").as_secs() / ssd.time_in("iteration").as_secs();
        assert!((it_ratio - 1.0).abs() < 0.05);
    }
}
