//! Terasort (paper Section V-B5).
//!
//! The canonical shuffle-heavy benchmark: stage `NF` (`newAPIHadoopFile`)
//! reads records from HDFS, range-partitions them and writes 930 GB of
//! shuffle data to Spark-local; stage `SF` (`saveAsNewAPIHadoopFile`) reads
//! the shuffle, sorts within ranges and writes the output back to HDFS.
//! The paper measures a 2.6× end-to-end HDD/SSD gap for the Spark-local
//! device (Fig. 12).

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec};

/// Terasort parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Billions of 93-byte records (paper: 10).
    pub records_b: u64,
    /// Total dataset bytes (paper: 930 GB).
    pub data_bytes: Bytes,
    /// Shuffle data per reduce range.
    pub reducer_bytes: Bytes,
}

impl Params {
    /// The paper's dataset: 10B records, 930 GB.
    pub fn paper() -> Self {
        Params {
            records_b: 10,
            data_bytes: Bytes::from_gib(930),
            reducer_bytes: Bytes::from_gib(1),
        }
    }

    /// A 1/16-scale version for tests.
    pub fn scaled_down() -> Self {
        Params {
            records_b: 1,
            data_bytes: Bytes::from_gib(58),
            reducer_bytes: Bytes::from_gib(1),
        }
    }
}

/// Builds the Terasort application.
pub fn app(params: &Params) -> App {
    let mut b = AppBuilder::new("Terasort");
    let src = b.hdfs_source("records", "/ts/input", params.data_bytes);
    let sorted = b.sort_by_key(
        src,
        "NF",
        ShuffleSpec::target_reducer_bytes(params.reducer_bytes),
        // Range partitioning over the 128 MB input splits: λ ≈ 1.5 against
        // the 32 MB/s per-core HDFS read rate.
        Cost::for_lambda(1.5, Rate::mib_per_sec(32.0)),
        // In-range sort on the reduce side: λ ≈ 2 against shuffle read.
        Cost::for_lambda(2.0, Rate::mib_per_sec(60.0)),
    );
    b.save_as_hadoop_file(sorted, "SF", "/ts/output");
    b.build().expect("Terasort defines jobs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(&Params::scaled_down()))
            .expect("Terasort simulates")
    }

    #[test]
    fn two_stage_structure() {
        let r = run(HybridConfig::SsdSsd);
        let names: Vec<&str> = r.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["NF", "SF"]);
    }

    #[test]
    fn data_is_conserved_through_the_sort() {
        let r = run(HybridConfig::SsdSsd);
        let p = Params::scaled_down();
        let nf = r.stage("NF").unwrap();
        let sf = r.stage("SF").unwrap();
        let close = |a: Bytes, b: Bytes| (a.as_f64() - b.as_f64()).abs() / b.as_f64() < 0.02;
        assert!(close(nf.channel_bytes(IoChannel::HdfsRead), p.data_bytes));
        assert!(close(
            nf.channel_bytes(IoChannel::ShuffleWrite),
            p.data_bytes
        ));
        assert!(close(
            sf.channel_bytes(IoChannel::ShuffleRead),
            p.data_bytes
        ));
        assert!(
            close(sf.channel_bytes(IoChannel::HdfsWrite), p.data_bytes * 2),
            "replicated output"
        );
    }

    #[test]
    fn hdd_local_slows_both_stages() {
        // Paper Fig 12: 2.6x end to end when Spark-local moves to HDD.
        let ssd = run(HybridConfig::SsdSsd);
        let hdd = run(HybridConfig::SsdHdd);
        let total = hdd.total_time().as_secs() / ssd.total_time().as_secs();
        assert!(
            total > 1.8,
            "end-to-end HDD/SSD = {total:.1}x (paper: 2.6x)"
        );
        let nf = hdd.stage("NF").unwrap().duration.as_secs()
            / ssd.stage("NF").unwrap().duration.as_secs();
        assert!(nf > 1.2, "NF shuffle-write bound on HDD: {nf:.1}x");
    }

    #[test]
    fn reduce_side_request_sizes_are_segments() {
        let r = run(HybridConfig::SsdSsd);
        let sf = r.stage("SF").unwrap();
        let rs = sf
            .channel(IoChannel::ShuffleRead)
            .avg_request_size()
            .unwrap();
        // 58 GiB over (464 maps × 58 reducers) ≈ 2.2 MiB segments.
        assert!(
            rs > Bytes::from_kib(256) && rs < Bytes::from_mib(8),
            "rs = {rs}"
        );
    }
}
