//! The GATK4 genome-analysis pipeline (paper Sections II-B, III, V-A).
//!
//! The Spark lineage follows the paper's Figure 1:
//!
//! ```text
//! initialReads (HDFS, 122 GB)
//!   ├─ primaryReads (flatMap, ×2.74) ── groupByKey "MD" (shuffle 334 GB)
//!   │                                        └─ markDuplicates (narrow)
//!   └─ nonPrimaryReads (filter, ×0.01) ──────────┐
//!                                                union -> markedReads (NOT cached!)
//!   job "BR": count(markedReads)   — re-reads shuffle + HDFS
//!   job "SF": save(applyBQSR(markedReads), 166 GB) — re-reads them again
//! ```
//!
//! `markedReads` cannot be cached (≈870 GB deserialized, Section III-B2),
//! so both BR and SF re-read the full 334 GB shuffle output and re-filter
//! the 122 GB input — reproducing every row of Table IV.
//!
//! Compute costs encode the λ values the paper measures in Section V-A:
//! λ = 12 for MD's HDFS-read tasks, λ = 1.3 for the `nonPrimaryReads`
//! tasks, λ = 20 for BR's shuffle-read tasks, and a smaller λ ≈ 5 for SF.

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec};

use crate::genome::GenomeDataset;

/// Per-core throughput caps the λ values were measured against
/// (`SparkConf::paper()`; see Section IV-A).
const T_HDFS_READ: f64 = 32.0;
const T_SHUFFLE_READ: f64 = 60.0;

/// GATK4 workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// The genome dataset (sizes scale with read pairs).
    pub dataset: GenomeDataset,
    /// Shuffle data per reducer — GATK4 tunes 27 MB (Section III-C2).
    pub reducer_bytes: Bytes,
    /// Input BAM path in the simulated DFS.
    pub input_path: String,
    /// Output path.
    pub output_path: String,
}

impl Params {
    /// The paper's full 500M-read-pair run.
    pub fn paper() -> Self {
        Params {
            dataset: GenomeDataset::hcc1954(),
            reducer_bytes: Bytes::from_mib(27),
            input_path: "/genomes/hcc1954.bam".into(),
            output_path: "/genomes/hcc1954.analysis-ready.bam".into(),
        }
    }

    /// A 1/16-scale dataset for fast tests (≈7.6 GB input).
    ///
    /// The per-reducer budget shrinks with the dataset so the shuffle-read
    /// *segment size* (`reducer_bytes / M`, the quantity that devastates
    /// HDDs) stays in the paper's few-tens-of-KB regime.
    pub fn scaled_down() -> Self {
        Params {
            dataset: GenomeDataset::hcc1954().scaled(1.0 / 16.0),
            reducer_bytes: Bytes::from_mib(3),
            ..Params::paper()
        }
    }
}

/// Expected I/O volumes per stage — the rows of Table IV, scaled to the
/// dataset. Values are logical bytes (replication excluded), in the order
/// `(hdfs_read, shuffle_write, shuffle_read, hdfs_write)`.
pub fn table4_rows(dataset: &GenomeDataset) -> [(&'static str, [Bytes; 4]); 3] {
    let input = dataset.bam_bytes();
    let shuffle = dataset.shuffle_bytes();
    let output = dataset.output_bytes();
    [
        ("MD", [input, shuffle, Bytes::ZERO, Bytes::ZERO]),
        ("BR", [input, Bytes::ZERO, shuffle, Bytes::ZERO]),
        ("SF", [input, Bytes::ZERO, shuffle, output]),
    ]
}

/// Builds the GATK4 application.
pub fn app(params: &Params) -> App {
    let input = params.dataset.bam_bytes();
    let shuffle = params.dataset.shuffle_bytes();
    let output = params.dataset.output_bytes();

    // Selectivities derived from the paper's volumes.
    let expand = shuffle.as_f64() / input.as_f64(); // ≈ 2.74
    let non_primary_keep = 0.01; // "most read records are filtered out"
    let marked_bytes = shuffle.as_f64() + non_primary_keep * input.as_f64();
    let apply_ratio = output.as_f64() / marked_bytes; // ≈ 0.495

    let mut b = AppBuilder::new("GATK4");
    let initial = b.hdfs_source("initialReads", &params.input_path, input);

    // MD path: λ = 12 against the 32 MB/s per-core HDFS read rate.
    let primary = b.flat_map(
        initial,
        "primaryReads",
        Cost::for_lambda(12.0, Rate::mib_per_sec(T_HDFS_READ)),
        expand,
    );
    let grouped = b.group_by_key(
        primary,
        "MD",
        ShuffleSpec::target_reducer_bytes(params.reducer_bytes),
        Cost::ZERO,
        1.0,
    );
    // Shared duplicate-marking work on the reducer side: the λ ≈ 5 part
    // common to BR and SF.
    let marked_dup = b.map(
        grouped,
        "markDuplicates",
        Cost::for_lambda(5.0, Rate::mib_per_sec(T_SHUFFLE_READ)),
        1.0,
    );

    // nonPrimary path: λ = 1.3 (I/O-dominated filter).
    let non_primary = b.filter(
        initial,
        "nonPrimaryReads",
        Cost::for_lambda(1.3, Rate::mib_per_sec(T_HDFS_READ)),
        non_primary_keep,
    );

    // The uncacheable union (Section III-B2): deliberately NOT persisted.
    let marked = b.union(&[marked_dup, non_primary], "markedReads");

    // BR: base-recalibration model building. Its shuffle-read tasks run at
    // λ = 20; markDuplicates already contributes λ ≈ 5, the action the rest.
    let br_extra_per_mib = (20.0 - 5.0) / (T_SHUFFLE_READ); // seconds per MiB
    b.count(marked, "BR", Cost::per_mib(br_extra_per_mib));

    // SF: apply recalibrated scores and save (λ stays ≈ 5, "the performance
    // gap starts even earlier than BR").
    let applied = b.map(marked, "applyBQSR", Cost::per_mib(0.01), apply_ratio);
    b.save_as_hadoop_file(applied, "SF", &params.output_path);

    b.build().expect("GATK4 defines jobs")
}

/// Parameters of the extended five-stage pipeline (paper Section VIII:
/// "GATK4 official release on January 2018 includes Burrows-Wheeler Aligner
/// (BWA) and HaplotypeCaller (HC) in addition to MD, BR and SF … We
/// consider to include BWA and HC in our future work"). This reproduction
/// implements that future work with synthetic-but-representative compute
/// intensities: both added stages are famously CPU-bound, which is exactly
/// what makes them an interesting contrast to the I/O-bound middle of the
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtendedParams {
    /// The MD/BR/SF core of the pipeline.
    pub base: Params,
    /// Compressed FASTQ input size (slightly smaller than the aligned BAM).
    pub fastq_bytes: Bytes,
    /// Output VCF size (called variants are small).
    pub vcf_bytes: Bytes,
    /// λ of the BWA alignment tasks against the per-core HDFS read rate
    /// (alignment is heavily CPU-bound; tens of seconds of compute per
    /// block).
    pub bwa_lambda: f64,
    /// λ of the HaplotypeCaller tasks (local reassembly; also CPU-bound).
    pub hc_lambda: f64,
}

impl ExtendedParams {
    /// Full-scale five-stage pipeline.
    pub fn paper() -> Self {
        let base = Params::paper();
        ExtendedParams {
            fastq_bytes: base.dataset.bam_bytes().scale(0.9),
            vcf_bytes: Bytes::from_gib(2),
            bwa_lambda: 40.0,
            hc_lambda: 30.0,
            base,
        }
    }

    /// 1/16-scale version for tests.
    pub fn scaled_down() -> Self {
        let base = Params::scaled_down();
        ExtendedParams {
            fastq_bytes: base.dataset.bam_bytes().scale(0.9),
            vcf_bytes: Bytes::from_mib(128),
            bwa_lambda: 40.0,
            hc_lambda: 30.0,
            base,
        }
    }
}

/// Builds the extended pipeline: BWA → (MD → BR → SF) → HaplotypeCaller.
///
/// BWA aligns the FASTQ input and saves the aligned BAM to the DFS, which
/// the classic three-stage core then consumes; HaplotypeCaller reads the
/// analysis-ready output and emits a (small) VCF. The middle stages reuse
/// [`app`]'s exact structure, so every Table-IV/Fig-2 property of the core
/// holds inside the extended pipeline too.
pub fn extended_app(params: &ExtendedParams) -> App {
    let base = &params.base;
    let input = base.dataset.bam_bytes();
    let shuffle = base.dataset.shuffle_bytes();
    let output = base.dataset.output_bytes();
    let expand = shuffle.as_f64() / input.as_f64();
    let non_primary_keep = 0.01;
    let marked_bytes = shuffle.as_f64() + non_primary_keep * input.as_f64();
    let apply_ratio = output.as_f64() / marked_bytes;

    let mut b = AppBuilder::new("GATK4-extended");

    // Stage 1: BWA. Alignment is CPU-bound (λ ≈ 40 against the 32 MB/s
    // per-core HDFS read rate); the aligned BAM is saved so the rest of the
    // pipeline can re-read it, as the released pipeline does.
    let fastq = b.hdfs_source("fastq", "/genomes/reads.fastq", params.fastq_bytes);
    let aligned = b.flat_map(
        fastq,
        "bwaAlign",
        Cost::for_lambda(params.bwa_lambda, Rate::mib_per_sec(T_HDFS_READ)),
        input.as_f64() / params.fastq_bytes.as_f64(),
    );
    b.save_as_hadoop_file(aligned, "BWA", &base.input_path);

    // Stages 2–4: the classic core, reading the BAM that BWA just wrote.
    let initial = b.hdfs_source("initialReads", &base.input_path, input);
    let primary = b.flat_map(
        initial,
        "primaryReads",
        Cost::for_lambda(12.0, Rate::mib_per_sec(T_HDFS_READ)),
        expand,
    );
    let grouped = b.group_by_key(
        primary,
        "MD",
        ShuffleSpec::target_reducer_bytes(base.reducer_bytes),
        Cost::ZERO,
        1.0,
    );
    let marked_dup = b.map(
        grouped,
        "markDuplicates",
        Cost::for_lambda(5.0, Rate::mib_per_sec(T_SHUFFLE_READ)),
        1.0,
    );
    let non_primary = b.filter(
        initial,
        "nonPrimaryReads",
        Cost::for_lambda(1.3, Rate::mib_per_sec(T_HDFS_READ)),
        non_primary_keep,
    );
    let marked = b.union(&[marked_dup, non_primary], "markedReads");
    let br_extra_per_mib = (20.0 - 5.0) / T_SHUFFLE_READ;
    b.count(marked, "BR", Cost::per_mib(br_extra_per_mib));
    let applied = b.map(marked, "applyBQSR", Cost::per_mib(0.01), apply_ratio);
    b.save_as_hadoop_file(applied, "SF", &base.output_path);

    // Stage 5: HaplotypeCaller over the analysis-ready reads. CPU-bound
    // local reassembly; the called variants are tiny.
    let ready = b.hdfs_source("analysisReady", &base.output_path, output);
    let variants = b.map(
        ready,
        "hcAssemble",
        Cost::for_lambda(params.hc_lambda, Rate::mib_per_sec(T_HDFS_READ)),
        params.vcf_bytes.as_f64() / output.as_f64(),
    );
    b.save_as_hadoop_file(variants, "HC", "/genomes/variants.vcf");

    b.build().expect("extended GATK4 defines jobs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig, cores: u32) -> doppio_sparksim::AppRun {
        let app = app(&Params::scaled_down());
        let cluster = ClusterSpec::paper_cluster(3, 36, config);
        Simulation::with_conf(
            cluster,
            SparkConf::paper().with_cores(cores).without_noise(),
        )
        .run(&app)
        .expect("GATK4 simulates")
    }

    #[test]
    fn stage_structure_matches_figure1() {
        let run = run(HybridConfig::SsdSsd, 8);
        let names: Vec<&str> = run.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["MD", "BR", "SF"],
            "map stage + two result stages"
        );
    }

    #[test]
    fn io_volumes_match_table4() {
        let params = Params::scaled_down();
        let r = run(HybridConfig::SsdSsd, 8);
        let input = params.dataset.bam_bytes().as_f64();
        let shuffle = params.dataset.shuffle_bytes().as_f64();
        let output = params.dataset.output_bytes().as_f64();
        let close = |a: Bytes, b: f64| (a.as_f64() - b).abs() / b.max(1.0) < 0.03;

        let md = r.stage("MD").unwrap();
        assert!(close(md.channel_bytes(IoChannel::HdfsRead), input));
        assert!(close(md.channel_bytes(IoChannel::ShuffleWrite), shuffle));
        assert!(md.channel_bytes(IoChannel::ShuffleRead).is_zero());

        let br = r.stage("BR").unwrap();
        assert!(
            close(br.channel_bytes(IoChannel::HdfsRead), input),
            "BR re-reads the input"
        );
        assert!(close(br.channel_bytes(IoChannel::ShuffleRead), shuffle));
        assert!(br.channel_bytes(IoChannel::HdfsWrite).is_zero());

        let sf = r.stage("SF").unwrap();
        assert!(
            close(sf.channel_bytes(IoChannel::HdfsRead), input),
            "SF re-reads the input"
        );
        assert!(
            close(sf.channel_bytes(IoChannel::ShuffleRead), shuffle),
            "shuffle read twice in total"
        );
        // HdfsWrite counts replication (×2).
        assert!(close(sf.channel_bytes(IoChannel::HdfsWrite), 2.0 * output));
    }

    #[test]
    fn shuffle_read_request_size_stays_tiny() {
        // At full scale M = 976 and 27 MB per reducer give ≈ 28 KB segments
        // (asserted arithmetically in the shuffle module); the scaled
        // params keep the segment within the same few-tens-of-KB regime.
        let r = run(HybridConfig::SsdSsd, 8);
        let br = r.stage("BR").unwrap();
        let rs = br
            .channel(IoChannel::ShuffleRead)
            .avg_request_size()
            .unwrap();
        assert!(
            (20..=64).contains(&(rs.as_kib() as u64)),
            "segment size = {rs} (paper: ~30 KB)"
        );
    }

    #[test]
    fn hdd_local_devastates_br_and_sf_but_not_md() {
        let ssd = run(HybridConfig::SsdSsd, 36);
        let hdd_local = run(HybridConfig::SsdHdd, 36);
        let ratio = |name: &str| {
            hdd_local.stage(name).unwrap().duration.as_secs()
                / ssd.stage(name).unwrap().duration.as_secs()
        };
        assert!(
            ratio("BR") > 3.0,
            "BR is shuffle-read bound on HDD: {:.1}x",
            ratio("BR")
        );
        assert!(ratio("SF") > 3.0, "SF too: {:.1}x", ratio("SF"));
        assert!(
            ratio("MD") < ratio("BR"),
            "MD (large writes) suffers less than BR (30 KB reads)"
        );
    }

    #[test]
    fn hdfs_device_barely_matters_for_md() {
        // Paper observation 1 (Section III-A): changing the HDFS disk does
        // not help MD.
        let ssd = run(HybridConfig::SsdSsd, 36);
        let hdd_hdfs = run(HybridConfig::HddSsd, 36);
        let md_ratio = hdd_hdfs.stage("MD").unwrap().duration.as_secs()
            / ssd.stage("MD").unwrap().duration.as_secs();
        assert!(
            md_ratio < 1.15,
            "MD insensitive to HDFS device: {md_ratio:.2}x"
        );
    }

    fn run_extended(config: HybridConfig, cores: u32) -> doppio_sparksim::AppRun {
        let app = extended_app(&ExtendedParams::scaled_down());
        let cluster = ClusterSpec::paper_cluster(3, 36, config);
        Simulation::with_conf(
            cluster,
            SparkConf::paper().with_cores(cores).without_noise(),
        )
        .run(&app)
        .expect("extended GATK4 simulates")
    }

    #[test]
    fn extended_pipeline_has_five_phases() {
        let r = run_extended(HybridConfig::SsdSsd, 8);
        let names: Vec<&str> = r.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["BWA", "MD", "BR", "SF", "HC"]);
    }

    #[test]
    fn extended_core_matches_classic_pipeline() {
        // The MD/BR/SF core inside the extended pipeline behaves exactly
        // like the stand-alone three-stage app.
        let ext = run_extended(HybridConfig::SsdSsd, 8);
        let classic = {
            let app = app(&Params::scaled_down());
            let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd);
            Simulation::with_conf(cluster, SparkConf::paper().with_cores(8).without_noise())
                .run(&app)
                .unwrap()
        };
        for stage in ["MD", "BR", "SF"] {
            let a = ext.stage(stage).unwrap();
            let b = classic.stage(stage).unwrap();
            assert_eq!(
                a.channel_bytes(IoChannel::ShuffleRead),
                b.channel_bytes(IoChannel::ShuffleRead)
            );
            let rel = (a.duration.as_secs() - b.duration.as_secs()).abs() / b.duration.as_secs();
            assert!(rel < 0.05, "{stage}: {rel:.3}");
        }
    }

    #[test]
    fn bwa_and_hc_are_cpu_bound() {
        // The added stages barely care which disks you buy — the paper's
        // point in reverse: λ ≈ 30–40 pushes B = λ·b far beyond any P.
        let ssd = run_extended(HybridConfig::SsdSsd, 36);
        let hdd = run_extended(HybridConfig::HddHdd, 36);
        for stage in ["BWA", "HC"] {
            let ratio = hdd.stage(stage).unwrap().duration.as_secs()
                / ssd.stage(stage).unwrap().duration.as_secs();
            assert!(ratio < 1.35, "{stage} device ratio = {ratio:.2}");
        }
        // …while the shuffle-bound middle still collapses on HDDs.
        let br_ratio = hdd.stage("BR").unwrap().duration.as_secs()
            / ssd.stage("BR").unwrap().duration.as_secs();
        assert!(br_ratio > 3.0);
    }

    #[test]
    fn files_flow_between_jobs() {
        // BWA's output is MD's input; SF's output is HC's input. If the DFS
        // wiring broke, planning would fail or read zero bytes.
        let r = run_extended(HybridConfig::SsdSsd, 8);
        let p = ExtendedParams::scaled_down();
        let bwa_written = r.stage("BWA").unwrap().channel_bytes(IoChannel::HdfsWrite);
        assert!(
            (bwa_written.as_f64() / 2.0 - p.base.dataset.bam_bytes().as_f64()).abs()
                / p.base.dataset.bam_bytes().as_f64()
                < 0.02
        );
        let hc_read = r.stage("HC").unwrap().channel_bytes(IoChannel::HdfsRead);
        assert!(
            (hc_read.as_f64() - p.base.dataset.output_bytes().as_f64()).abs()
                / p.base.dataset.output_bytes().as_f64()
                < 0.02
        );
    }

    #[test]
    fn table4_rows_scale_with_dataset() {
        let rows = table4_rows(&GenomeDataset::hcc1954());
        assert_eq!(rows[0].0, "MD");
        assert!(
            (rows[1].1[2].as_gib() - 334.0).abs() < 0.5,
            "BR shuffle read"
        );
        assert!((rows[2].1[3].as_gib() - 166.0).abs() < 0.5, "SF hdfs write");
    }
}
