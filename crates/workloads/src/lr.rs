//! Logistic Regression (paper Section V-B1).
//!
//! A typical iterative MLlib algorithm with two phases: `dataValidator`
//! (parse the input and cache `parsedData`) and 50 `iteration`s, each
//! reading the cached RDD and computing a gradient.
//!
//! The paper evaluates two dataset sizes:
//! * **small** — 1,200M examples, `parsedData` ≈ 280 GB, fits the cluster's
//!   storage memory (10 × 36 GB = 360 GB): HDD-vs-SSD differences come only
//!   from HDFS I/O in `dataValidator` (up to 2×, Fig. 8a).
//! * **large** — 4,000M examples, `parsedData` ≈ 990 GB: most of it
//!   persists on the Spark-local disk, and every iteration re-reads the
//!   spilled portion (7.0× HDD/SSD gap, Fig. 8b).

use doppio_events::Bytes;
use doppio_sparksim::{App, AppBuilder, Cost, StorageLevel};

/// Logistic Regression parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Millions of examples.
    pub examples_m: u64,
    /// Features per example (the paper uses 20).
    pub features: u32,
    /// Size of `parsedData` (serialized ≈ deserialized for dense doubles).
    pub parsed_bytes: Bytes,
    /// Gradient iterations.
    pub iterations: u32,
    /// Workload label.
    pub label: &'static str,
}

impl Params {
    /// The paper's small dataset: 1,200M examples, 280 GB, 50 iterations.
    pub fn paper_small() -> Self {
        Params {
            examples_m: 1200,
            features: 20,
            parsed_bytes: Bytes::from_gib(280),
            iterations: 50,
            label: "LR-small",
        }
    }

    /// The paper's large dataset: 4,000M examples, 990 GB, 50 iterations.
    pub fn paper_large() -> Self {
        Params {
            examples_m: 4000,
            features: 20,
            parsed_bytes: Bytes::from_gib(990),
            iterations: 50,
            label: "LR-large",
        }
    }

    /// Test-scale small dataset: fits a small test cluster's storage
    /// memory while keeping `M ≫ N·P` so stage times stay in the linear
    /// regime Equation 1 assumes (the paper's configurations all do).
    pub fn scaled_small() -> Self {
        Params {
            examples_m: 250,
            parsed_bytes: Bytes::from_gib(60),
            iterations: 5,
            label: "LR-small",
            ..Params::paper_small()
        }
    }

    /// Test-scale large dataset (overflows even a 5-node test cluster's
    /// 180 GB storage pool, so every iteration re-reads the spill).
    pub fn scaled_large() -> Self {
        Params {
            examples_m: 1000,
            parsed_bytes: Bytes::from_gib(250),
            iterations: 5,
            label: "LR-large",
            ..Params::paper_large()
        }
    }
}

/// Gradient CPU seconds per MiB of cached data (calibrated so the small
/// dataset's end-to-end HDD/SSD gap lands near the paper's 2×).
const GRADIENT_SECS_PER_MIB: f64 = 0.0023;

/// Builds the Logistic Regression application.
pub fn app(params: &Params) -> App {
    let mut b = AppBuilder::new(params.label);
    let src = b.hdfs_source(
        "examples",
        format!("/lr/{}/input", params.label),
        params.parsed_bytes,
    );
    let parsed = b.map(src, "parsedData", Cost::per_mib(0.001), 1.0);
    b.persist(parsed, StorageLevel::MemoryAndDisk, 1.0);
    b.count(parsed, "dataValidator", Cost::ZERO);
    for _ in 0..params.iterations {
        b.count(parsed, "iteration", Cost::per_mib(GRADIENT_SECS_PER_MIB));
    }
    b.build().expect("LR defines jobs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_events::SimDuration;
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(params: &Params, config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(params))
            .expect("LR simulates")
    }

    #[test]
    fn stage_structure() {
        let r = run(&Params::scaled_small(), HybridConfig::SsdSsd);
        assert_eq!(r.stages().len(), 1 + 5);
        assert_eq!(r.stages()[0].name, "dataValidator");
        assert_eq!(r.stages_named("iteration").count(), 5);
    }

    #[test]
    fn small_dataset_iterations_do_no_disk_io() {
        let r = run(&Params::scaled_small(), HybridConfig::SsdSsd);
        for it in r.stages_named("iteration") {
            assert!(it.channel_bytes(IoChannel::PersistRead).is_zero());
            assert!(it.channel_bytes(IoChannel::HdfsRead).is_zero());
        }
    }

    #[test]
    fn large_dataset_iterations_hit_spark_local() {
        let r = run(&Params::scaled_large(), HybridConfig::SsdSsd);
        // 120 GiB cached vs 2 x 36 GiB pool: most of it spills.
        let spilled: f64 = r
            .stage("dataValidator")
            .unwrap()
            .channel_bytes(IoChannel::PersistWrite)
            .as_gib();
        assert!(spilled > 40.0, "spill = {spilled:.0} GiB");
        for it in r.stages_named("iteration") {
            let read = it.channel_bytes(IoChannel::PersistRead).as_gib();
            assert!(
                (read - spilled).abs() / spilled < 0.02,
                "each iteration re-reads the spill"
            );
        }
    }

    #[test]
    fn small_gap_comes_from_hdfs_only() {
        // Paper Fig 8a: ~2x HDD/SSD for LR-small, all in dataValidator.
        let ssd = run(&Params::scaled_small(), HybridConfig::SsdSsd);
        let hdd = run(&Params::scaled_small(), HybridConfig::HddHdd);
        let it_ratio = hdd.time_in("iteration").as_secs() / ssd.time_in("iteration").as_secs();
        assert!(
            (it_ratio - 1.0).abs() < 0.05,
            "iterations identical: {it_ratio:.2}"
        );
        let dv_ratio =
            hdd.time_in("dataValidator").as_secs() / ssd.time_in("dataValidator").as_secs();
        assert!(dv_ratio > 1.5, "dataValidator slower on HDD: {dv_ratio:.2}");
    }

    #[test]
    fn large_gap_comes_from_persist_read() {
        // Paper Fig 8b: 7.0x HDD/SSD on the iteration phase.
        let ssd = run(&Params::scaled_large(), HybridConfig::SsdSsd);
        let hdd = run(&Params::scaled_large(), HybridConfig::SsdHdd); // HDFS stays SSD
        let ratio = hdd.time_in("iteration").as_secs() / ssd.time_in("iteration").as_secs();
        assert!(
            ratio > 3.0,
            "persist-read-bound iterations much slower on HDD local: {ratio:.1}x (paper: 7.0x)"
        );
    }

    #[test]
    fn total_time_is_sum() {
        let r = run(&Params::scaled_small(), HybridConfig::SsdSsd);
        let sum = r
            .stages()
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration);
        assert_eq!(r.total_time(), sum);
    }
}
