//! An Ousterhout-style SQL analytics workload (paper Section VII-A).
//!
//! The paper reconciles its "I/O matters 10×" finding with Ousterhout et
//! al.'s NSDI'15 "I/O buys at most 19%" by plugging that study's numbers
//! into Equation 1: ~10 MB/s of disk traffic per node and a 4:1 CPU:disk
//! ratio put SQL scans firmly on the CPU side of the break point.
//!
//! This module makes that workload a first-class citizen so the claim can
//! be checked end to end in the *simulator*, not just in the model
//! (`abl02_ousterhout` does the model-side version): a scan-heavy query
//! with a modest aggregation shuffle, whose end-to-end HDD/SSD gap must
//! stay inside Ousterhout's ~19%.

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec};

/// SQL workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Scanned table bytes.
    pub input_bytes: Bytes,
    /// Shuffle volume of the join/aggregation (SQL shuffles shrink data).
    pub shuffle_bytes: Bytes,
    /// CPU-to-I/O ratio of the scan (Ousterhout's workloads are
    /// deserialization/compute dominated).
    pub scan_lambda: f64,
}

impl Params {
    /// A TPC-DS-ish profile at the scale of the NSDI'15 study.
    pub fn paper() -> Self {
        Params {
            input_bytes: Bytes::from_gib(200),
            shuffle_bytes: Bytes::from_gib(40),
            scan_lambda: 8.0,
        }
    }

    /// 1/10-scale version for tests.
    pub fn scaled_down() -> Self {
        Params {
            input_bytes: Bytes::from_gib(20),
            shuffle_bytes: Bytes::from_gib(4),
            scan_lambda: 8.0,
        }
    }
}

/// Builds the SQL query: scan → join/aggregate shuffle → small result.
pub fn app(params: &Params) -> App {
    let shuffle_ratio = params.shuffle_bytes.as_f64() / params.input_bytes.as_f64();
    let mut b = AppBuilder::new("SQL");
    let table = b.hdfs_source("table", "/sql/table", params.input_bytes);
    // Scan: decompress + decode + predicate, λ ≈ 8 against the 32 MB/s
    // per-core HDFS stream — CPU-side of the break point on any disk.
    let scanned = b.filter(
        table,
        "scan",
        Cost::for_lambda(params.scan_lambda, Rate::mib_per_sec(32.0)),
        shuffle_ratio,
    );
    let joined = b.shuffle_op(
        scanned,
        "join",
        "join",
        ShuffleSpec::target_reducer_bytes(Bytes::from_mib(32)),
        Cost::ZERO,
        Cost::for_lambda(8.0, Rate::mib_per_sec(60.0)),
        1.0,
        0.05,
    );
    b.count(joined, "aggregate", Cost::per_mib(0.05));
    b.build().expect("SQL defines jobs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(&Params::scaled_down()))
            .expect("SQL simulates")
    }

    #[test]
    fn io_barely_matters_end_to_end() {
        // The NSDI'15 claim, reproduced in the simulator: moving this
        // workload from 2HDD to 2SSD buys well under ~19%.
        let ssd = run(HybridConfig::SsdSsd);
        let hdd = run(HybridConfig::HddHdd);
        let gap = hdd.total_time().as_secs() / ssd.total_time().as_secs() - 1.0;
        assert!(
            gap < 0.19,
            "SQL profile must be CPU-bound: HDD is only {:.0}% slower",
            gap * 100.0
        );
        assert!(gap >= 0.0, "SSD cannot lose");
    }

    #[test]
    fn same_model_different_regime() {
        // Contrast within one test: the same simulator that shows a <19%
        // gap here shows a multi-x gap for GATK4-style 30 KB shuffle reads.
        let sql_gap = {
            let ssd = run(HybridConfig::SsdSsd);
            let hdd = run(HybridConfig::SsdHdd);
            hdd.total_time().as_secs() / ssd.total_time().as_secs()
        };
        assert!(sql_gap < 1.19, "sql gap = {sql_gap:.2}");
    }

    #[test]
    fn shuffle_volume_is_modest() {
        let r = run(HybridConfig::SsdSsd);
        let p = Params::scaled_down();
        let sh = r.total_channel_bytes(IoChannel::ShuffleRead);
        assert!((sh.as_f64() - p.shuffle_bytes.as_f64()).abs() / p.shuffle_bytes.as_f64() < 0.02);
        // Disk traffic per node-second stays far below the device peaks —
        // the low-pressure regime behind Ousterhout's numbers (their 10 MB/s
        // figure averages over whole query mixes including idle gaps; a
        // single dense query sits a small multiple above it).
        let per_node_mbps = r
            .stages()
            .iter()
            .map(|s| s.total_disk_bytes().as_mib())
            .sum::<f64>()
            / (2.0 * r.total_time().as_secs());
        assert!(
            per_node_mbps < 110.0,
            "disk pressure stays below HDD peak: {per_node_mbps:.0} MiB/s per node"
        );
    }
}
