//! Triangle Count (paper Section V-B4).
//!
//! GraphX triangle counting over a 1M-vertex graph in 2400 partitions. The
//! `computeTriangleCount` phase first repartitions the graph to
//! canonicalize it (no self-loops, deduplicated oriented edges) and then
//! counts triangles — incurring a 49 GB memory-cached RDD and 396 GB of
//! shuffle data (8× the graph, because edge triplets explode). The shuffle
//! makes the phase 6.5× slower with an HDD Spark-local directory (Fig. 11).

use doppio_events::{Bytes, Rate};
use doppio_sparksim::{App, AppBuilder, Cost, ShuffleSpec, StorageLevel};

/// Triangle Count parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Millions of vertices (paper: 1).
    pub vertices_m: u64,
    /// Serialized graph bytes (cached in memory; paper: 49 GB).
    pub graph_bytes: Bytes,
    /// Total shuffle volume of canonicalization (paper: 396 GB).
    pub shuffle_bytes: Bytes,
    /// Partitions (paper: 2400).
    pub partitions: u32,
}

impl Params {
    /// The paper's dataset.
    pub fn paper() -> Self {
        Params {
            vertices_m: 1,
            graph_bytes: Bytes::from_gib(49),
            shuffle_bytes: Bytes::from_gib(396),
            partitions: 2400,
        }
    }

    /// A 1/8-scale version for tests.
    pub fn scaled_down() -> Self {
        Params {
            vertices_m: 1,
            graph_bytes: Bytes::from_gib(6),
            shuffle_bytes: Bytes::from_gib(48),
            partitions: 300,
        }
    }
}

/// Builds the Triangle Count application.
pub fn app(params: &Params) -> App {
    let blowup = params.shuffle_bytes.as_f64() / params.graph_bytes.as_f64(); // ≈ 8.1
    let mut b = AppBuilder::new("TriangleCount");
    let edges = b.hdfs_source("edges", "/tc/edges", params.graph_bytes);
    let graph = b.map(edges, "graph", Cost::per_mib(0.002), 1.0);
    b.persist(graph, StorageLevel::MemoryAndDisk, 1.0);
    b.count(graph, "graphLoader", Cost::ZERO);
    // Canonicalization repartition: triplets explode into 396 GB of shuffle.
    let canon = b.shuffle_op(
        graph,
        "computeTriangleCount",
        "canonicalize",
        ShuffleSpec::reducers(params.partitions),
        Cost::per_mib(0.005),
        Cost::for_lambda(2.0, Rate::mib_per_sec(60.0)),
        blowup,
        0.05,
    );
    b.count(canon, "triangleCount", Cost::per_mib(0.01));
    b.build().expect("TriangleCount defines jobs")
}

/// Total time of the compute phase (canonicalization map stage + counting
/// result stage), matching Fig. 11's `computeTriangleCount` bar.
pub fn compute_time(run: &doppio_sparksim::AppRun) -> doppio_events::SimDuration {
    run.time_in("computeTriangleCount") + run.time_in("triangleCount")
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::{ClusterSpec, HybridConfig};
    use doppio_sparksim::{AppRun, IoChannel, Simulation, SparkConf};

    fn run(config: HybridConfig) -> AppRun {
        let cluster = ClusterSpec::paper_cluster(2, 36, config);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
            .run(&app(&Params::scaled_down()))
            .expect("TriangleCount simulates")
    }

    #[test]
    fn shuffle_blowup_is_eight_x() {
        let r = run(HybridConfig::SsdSsd);
        let p = Params::scaled_down();
        let w = r
            .stage("computeTriangleCount")
            .unwrap()
            .channel_bytes(IoChannel::ShuffleWrite);
        assert!(
            (w.as_f64() / p.graph_bytes.as_f64() - 8.0).abs() < 0.2,
            "blowup = {:.1}x",
            w.as_f64() / p.graph_bytes.as_f64()
        );
    }

    #[test]
    fn graph_stays_in_memory() {
        let r = run(HybridConfig::SsdSsd);
        assert!(r
            .stage("graphLoader")
            .unwrap()
            .channel_bytes(IoChannel::PersistWrite)
            .is_zero());
    }

    #[test]
    fn compute_phase_is_shuffle_bound_on_hdd() {
        // Paper Fig 11: 6.5x on computeTriangleCount.
        let ssd = run(HybridConfig::SsdSsd);
        let hdd = run(HybridConfig::SsdHdd);
        let ratio = compute_time(&hdd).as_secs() / compute_time(&ssd).as_secs();
        assert!(ratio > 3.0, "compute HDD/SSD = {ratio:.1}x (paper: 6.5x)");
        let gl_ratio = hdd.time_in("graphLoader").as_secs() / ssd.time_in("graphLoader").as_secs();
        assert!(gl_ratio < 1.2, "graphLoader unaffected by local device");
    }

    #[test]
    fn segment_size_is_moderate() {
        // 48 GiB over 48 maps x 300 reducers ≈ 3.4 MiB segments scaled;
        // at paper scale: 396 GB / (392 x 2400) ≈ 430 KiB.
        let full = Params::paper();
        let maps = full.graph_bytes.div_ceil_by(Bytes::from_mib(128));
        let seg = full.shuffle_bytes.as_f64() / (maps as f64 * full.partitions as f64);
        assert!(
            (seg / 1024.0 - 430.0).abs() < 40.0,
            "segment = {:.0} KiB",
            seg / 1024.0
        );
    }
}
