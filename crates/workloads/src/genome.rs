//! Synthetic genome-dataset model.
//!
//! **Substitution note (DESIGN.md §1).** The paper processes a real
//! whole-genome BAM file sampled from breast-cancer cell line HCC1954:
//! 500 million read pairs, ~101 nucleotides per read, 122 GB compressed,
//! producing a 166 GB analysis-ready output. We cannot ship patient genome
//! data, and the performance model never looks at base calls — only at
//! byte volumes, partition counts and compute/I-O ratios. This module
//! therefore describes the dataset *geometrically*: sizes scale linearly
//! with the number of read pairs, anchored to the paper's measurements.

use doppio_events::Bytes;

/// Paper-measured constants for the HCC1954 30× whole-genome run.
pub mod paper_constants {
    /// Read pairs in the full dataset.
    pub const READ_PAIRS: u64 = 500_000_000;
    /// Compressed input BAM bytes (122 GB).
    pub const INPUT_GB: f64 = 122.0;
    /// Compressed output BAM bytes (166 GB).
    pub const OUTPUT_GB: f64 = 166.0;
    /// Shuffle volume of the MarkDuplicate groupByKey (334 GB, Table IV).
    pub const SHUFFLE_GB: f64 = 334.0;
    /// Deserialized in-memory size of the `markedReads` UnionRDD (~870 GB,
    /// Section III-B2).
    pub const MARKED_READS_MEM_GB: f64 = 870.0;
    /// Nucleotides per read.
    pub const READ_LEN: u32 = 101;
}

/// A synthetic genome dataset: the paper's measurements scaled by read-pair
/// count.
///
/// # Example
///
/// ```
/// use doppio_workloads::genome::GenomeDataset;
///
/// let full = GenomeDataset::hcc1954();
/// assert_eq!(full.read_pairs, 500_000_000);
/// assert!((full.bam_bytes().as_gib() - 122.0).abs() < 0.5);
///
/// let small = full.scaled(1.0 / 16.0);
/// assert!((small.bam_bytes().as_gib() - 122.0 / 16.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeDataset {
    /// Number of read pairs.
    pub read_pairs: u64,
    /// Nucleotides per read.
    pub read_len: u32,
}

impl GenomeDataset {
    /// The paper's full 30× whole-genome dataset (HCC1954).
    pub fn hcc1954() -> Self {
        GenomeDataset {
            read_pairs: paper_constants::READ_PAIRS,
            read_len: paper_constants::READ_LEN,
        }
    }

    /// A dataset scaled to `factor` of the full size.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        GenomeDataset {
            read_pairs: ((self.read_pairs as f64 * factor).round() as u64).max(1),
            read_len: self.read_len,
        }
    }

    fn ratio(&self) -> f64 {
        self.read_pairs as f64 / paper_constants::READ_PAIRS as f64
    }

    /// Compressed input BAM size.
    pub fn bam_bytes(&self) -> Bytes {
        Bytes::from_gib_f64(paper_constants::INPUT_GB * self.ratio())
    }

    /// Compressed analysis-ready output size.
    pub fn output_bytes(&self) -> Bytes {
        Bytes::from_gib_f64(paper_constants::OUTPUT_GB * self.ratio())
    }

    /// Shuffle volume of the MarkDuplicate stage.
    pub fn shuffle_bytes(&self) -> Bytes {
        Bytes::from_gib_f64(paper_constants::SHUFFLE_GB * self.ratio())
    }

    /// Deserialized expansion factor of `markedReads` (memory bytes per
    /// serialized input byte): 870 GB / 122 GB ≈ 7.13.
    pub fn mem_expansion() -> f64 {
        paper_constants::MARKED_READS_MEM_GB / paper_constants::INPUT_GB
    }

    /// Total nucleotides (2 reads per pair).
    pub fn nucleotides(&self) -> u64 {
        self.read_pairs * 2 * self.read_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dataset_matches_paper() {
        let g = GenomeDataset::hcc1954();
        assert!((g.bam_bytes().as_gib() - 122.0).abs() < 0.5);
        assert!((g.output_bytes().as_gib() - 166.0).abs() < 0.5);
        assert!((g.shuffle_bytes().as_gib() - 334.0).abs() < 0.5);
        assert_eq!(g.nucleotides(), 101_000_000_000);
    }

    #[test]
    fn expansion_factor_is_about_7() {
        assert!((GenomeDataset::mem_expansion() - 7.13).abs() < 0.01);
    }

    #[test]
    fn scaling_is_linear() {
        let g = GenomeDataset::hcc1954().scaled(0.25);
        assert_eq!(g.read_pairs, 125_000_000);
        assert!((g.shuffle_bytes().as_gib() - 83.5).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = GenomeDataset::hcc1954().scaled(0.0);
    }
}
