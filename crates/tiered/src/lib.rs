//! Disaggregated storage tiers for Doppio.
//!
//! The paper's device menu is node-local HDD/SSD behind HDFS. Modern
//! deployments instead read input from a shared object store (S3-like:
//! per-request latency plus a cluster-wide aggregate bandwidth cap),
//! optionally fronted by an Alluxio-style cache tier, or from a shared
//! parallel filesystem (Lustre/burst-buffer shape) on supercomputers.
//!
//! This crate describes those shapes as pure data: a [`StorageProfile`]
//! selects the tier and carries its parameters, and
//! [`StorageProfile::remote_device`] lowers the shared remote side to an
//! ordinary [`DeviceSpec`] whose effective-bandwidth curve encodes the
//! per-request latency (`BW(rs) = rs / (latency + rs / peak)`). The cluster
//! runtime instantiates that spec as one extra processor-sharing rate domain
//! shared by every node — the same machinery as a local disk, so replay,
//! harvest-horizon and bit-identity discipline all apply unchanged.
//!
//! The cache tier stays deterministic because the hit ratio is a pure
//! function of working-set size versus aggregate cache capacity
//! ([`hit_ratio`]), and each flow is split byte-exactly into a hit part
//! (local device speed) and a miss part (remote path) — no sampling.

mod profile;

pub use profile::{
    hit_ratio, CacheSpec, ObjectStoreSpec, ParallelFsSpec, StorageProfile, PROFILE_NAMES,
};
