//! Storage-tier profiles and the deterministic cache-hit model.

use std::fmt;

use doppio_engine::{FingerprintBuilder, Fingerprintable};
use doppio_events::{Bytes, Rate};
use doppio_storage::{BandwidthCurve, DeviceSpec};

/// A shared object store (S3-like): every request pays a fixed first-byte
/// latency, and all clients in the cluster share one aggregate bandwidth cap
/// on the store fabric.
///
/// Lowered to a [`DeviceSpec`] via the parametric latency model, so small
/// requests are latency-dominated exactly like a disk's Figure-5 curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectStoreSpec {
    /// Human-readable store name (e.g. `"s3-standard"`).
    pub name: String,
    /// Cluster-wide aggregate bandwidth of the store fabric.
    pub aggregate_bw: Rate,
    /// Per-request first-byte latency in seconds.
    pub request_latency_secs: f64,
}

impl ObjectStoreSpec {
    /// An S3-standard-like store: 10 GiB/s aggregate, 30 ms first-byte
    /// latency. At 128 MiB requests this is within 3% of peak; at 4 KiB it
    /// collapses to ~133 KiB/s per stream — the latency wall the cache tier
    /// exists to hide.
    pub fn s3_standard() -> Self {
        ObjectStoreSpec {
            name: "s3-standard".to_string(),
            aggregate_bw: Rate::gib_per_sec(10.0),
            request_latency_secs: 30e-3,
        }
    }

    /// The remote rate domain as an ordinary device spec (symmetric
    /// read/write curves from the latency model).
    pub fn device(&self) -> DeviceSpec {
        let curve =
            BandwidthCurve::from_latency_model(self.aggregate_bw, self.request_latency_secs);
        DeviceSpec::new(self.name.clone(), curve.clone(), curve)
    }
}

/// A cache tier (Alluxio-style) in front of an object store.
///
/// Hits are served by the node-local device path at local speed; misses pay
/// the remote object-store path. The hit ratio is the deterministic
/// [`hit_ratio`] of working-set size vs `nodes × capacity_per_node`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSpec {
    /// The backing object store misses fall through to.
    pub remote: ObjectStoreSpec,
    /// Cache capacity contributed by each node.
    pub capacity_per_node: Bytes,
}

/// A shared parallel filesystem (Lustre/burst-buffer shape): high aggregate
/// bandwidth with a per-client stripe cap, as measured on large Spark-on-HPC
/// deployments. `diskless` nodes route shuffle and spill traffic through the
/// shared filesystem too, which is what unlocks 256–1024-node scenarios on
/// machines without local disks.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelFsSpec {
    /// Filesystem name (e.g. `"lustre"`).
    pub name: String,
    /// Aggregate backend bandwidth across all OSTs.
    pub aggregate_bw: Rate,
    /// Per-request latency in seconds (metadata + network round trip).
    pub request_latency_secs: f64,
    /// Per-client stripe cap: one stream cannot exceed this rate.
    pub stripe_cap: Rate,
    /// Nodes have no local disks; shuffle/spill also use the shared FS.
    pub diskless: bool,
}

impl ParallelFsSpec {
    /// A Lustre-like burst buffer: 200 GiB/s aggregate, 2 GiB/s per-client
    /// stripe cap, 1 ms request latency, diskless compute nodes.
    pub fn lustre() -> Self {
        ParallelFsSpec {
            name: "lustre".to_string(),
            aggregate_bw: Rate::gib_per_sec(200.0),
            request_latency_secs: 1e-3,
            stripe_cap: Rate::gib_per_sec(2.0),
            diskless: true,
        }
    }

    /// The shared filesystem as a device spec.
    pub fn device(&self) -> DeviceSpec {
        let curve =
            BandwidthCurve::from_latency_model(self.aggregate_bw, self.request_latency_secs);
        DeviceSpec::new(self.name.clone(), curve.clone(), curve)
    }
}

/// Where a cluster's datasets live: the storage tier selected for a
/// simulation. `Local` is the paper's original node-local HDD/SSD + HDFS
/// model and leaves every code path bit-identical to the pre-tiered golden
/// traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StorageProfile {
    /// Node-local disks + HDFS replication (the paper's model).
    #[default]
    Local,
    /// All dataset I/O against a shared object store; no HDFS replication
    /// (the store provides durability).
    ObjectStore(ObjectStoreSpec),
    /// Object store fronted by a node-local cache tier.
    Cached(CacheSpec),
    /// Shared parallel filesystem with per-client stripe caps.
    ParallelFs(ParallelFsSpec),
}

/// Named profiles accepted by `simulate --storage <profile>` and listed by
/// `doppio list`, as `(name, description)` pairs.
pub const PROFILE_NAMES: &[(&str, &str)] = &[
    ("local", "node-local HDD/SSD + HDFS (paper model, default)"),
    (
        "s3",
        "shared object store: 10 GiB/s aggregate, 30 ms/request",
    ),
    (
        "s3-cached",
        "object store behind a 64 GiB/node cache tier (Alluxio-style)",
    ),
    (
        "lustre",
        "parallel FS: 200 GiB/s aggregate, 2 GiB/s stripe cap, diskless",
    ),
];

impl StorageProfile {
    /// The `s3` named profile.
    pub fn s3() -> Self {
        StorageProfile::ObjectStore(ObjectStoreSpec::s3_standard())
    }

    /// The `s3-cached` named profile (64 GiB of cache per node).
    pub fn s3_cached() -> Self {
        StorageProfile::Cached(CacheSpec {
            remote: ObjectStoreSpec::s3_standard(),
            capacity_per_node: Bytes::from_gib(64),
        })
    }

    /// The `lustre` named profile.
    pub fn lustre() -> Self {
        StorageProfile::ParallelFs(ParallelFsSpec::lustre())
    }

    /// Parses a named profile as accepted by `simulate --storage`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "local" => Some(StorageProfile::Local),
            "s3" => Some(StorageProfile::s3()),
            "s3-cached" => Some(StorageProfile::s3_cached()),
            "lustre" => Some(StorageProfile::lustre()),
            _ => None,
        }
    }

    /// Canonical profile name (the `simulate --storage` spelling).
    pub fn name(&self) -> &str {
        match self {
            StorageProfile::Local => "local",
            StorageProfile::ObjectStore(_) => "s3",
            StorageProfile::Cached(_) => "s3-cached",
            StorageProfile::ParallelFs(_) => "lustre",
        }
    }

    /// True for the paper's node-local model.
    pub fn is_local(&self) -> bool {
        matches!(self, StorageProfile::Local)
    }

    /// The shared remote rate domain, if this profile has one. `None` for
    /// `Local`, which is what keeps default runs bit-identical.
    pub fn remote_device(&self) -> Option<DeviceSpec> {
        match self {
            StorageProfile::Local => None,
            StorageProfile::ObjectStore(s) => Some(s.device()),
            StorageProfile::Cached(c) => Some(c.remote.device()),
            StorageProfile::ParallelFs(p) => Some(p.device()),
        }
    }

    /// Per-stream cap on remote flows (the parallel-FS stripe cap). `None`
    /// means a stream may use the store's full effective bandwidth.
    pub fn remote_stream_cap(&self) -> Option<Rate> {
        match self {
            StorageProfile::ParallelFs(p) => Some(p.stripe_cap),
            _ => None,
        }
    }

    /// Deterministic dataset-read hit ratio against the cache tier for a
    /// working set spread over `nodes` nodes. Profiles without a cache tier
    /// hit never (remote tiers) or always (local disks hold everything).
    pub fn cache_hit_ratio(&self, working_set: Bytes, nodes: usize) -> f64 {
        match self {
            StorageProfile::Local => 1.0,
            StorageProfile::ObjectStore(_) | StorageProfile::ParallelFs(_) => 0.0,
            StorageProfile::Cached(c) => {
                hit_ratio(working_set, c.capacity_per_node * nodes.max(1) as u64)
            }
        }
    }

    /// True when shuffle and spill traffic also goes through the shared
    /// filesystem (diskless parallel-FS nodes).
    pub fn diskless(&self) -> bool {
        matches!(self, StorageProfile::ParallelFs(p) if p.diskless)
    }
}

impl fmt::Display for StorageProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageProfile::Local => write!(f, "local (node disks + HDFS)"),
            StorageProfile::ObjectStore(s) => write!(
                f,
                "{} ({} aggregate, {:.0} ms/request)",
                s.name,
                s.aggregate_bw,
                s.request_latency_secs * 1e3
            ),
            StorageProfile::Cached(c) => {
                write!(f, "{} + {} cache/node", c.remote.name, c.capacity_per_node)
            }
            StorageProfile::ParallelFs(p) => write!(
                f,
                "{} ({} aggregate, {} stripe cap{})",
                p.name,
                p.aggregate_bw,
                p.stripe_cap,
                if p.diskless { ", diskless" } else { "" }
            ),
        }
    }
}

/// Fraction of a dataset working set resident in a cache of the given total
/// capacity: `min(capacity / working_set, 1)`, with an empty working set
/// defined as fully cached.
///
/// This is the deterministic stand-in for an LRU steady state under a
/// uniform re-reference distribution — monotone and continuous in capacity,
/// so cache-size sweeps produce the paper-style smooth knee curve.
pub fn hit_ratio(working_set: Bytes, cache_capacity: Bytes) -> f64 {
    if working_set.is_zero() {
        1.0
    } else {
        (cache_capacity.as_f64() / working_set.as_f64()).min(1.0)
    }
}

impl Fingerprintable for ObjectStoreSpec {
    fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.write_str(&self.name);
        self.aggregate_bw.fingerprint_into(fp);
        fp.write_f64(self.request_latency_secs);
    }
}

impl Fingerprintable for CacheSpec {
    fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        self.remote.fingerprint_into(fp);
        self.capacity_per_node.fingerprint_into(fp);
    }
}

impl Fingerprintable for ParallelFsSpec {
    fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.write_str(&self.name);
        self.aggregate_bw.fingerprint_into(fp);
        fp.write_f64(self.request_latency_secs);
        self.stripe_cap.fingerprint_into(fp);
        fp.write_bool(self.diskless);
    }
}

impl Fingerprintable for StorageProfile {
    fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        match self {
            StorageProfile::Local => fp.write_u32(0),
            StorageProfile::ObjectStore(s) => {
                fp.write_u32(1);
                s.fingerprint_into(fp);
            }
            StorageProfile::Cached(c) => {
                fp.write_u32(2);
                c.fingerprint_into(fp);
            }
            StorageProfile::ParallelFs(p) => {
                fp.write_u32(3);
                p.fingerprint_into(fp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_engine::Fingerprint;
    use doppio_storage::IoDir;
    use proptest::prelude::*;

    fn fp_of(p: &StorageProfile) -> Fingerprint {
        p.fingerprint()
    }

    #[test]
    fn every_listed_profile_parses_and_round_trips() {
        for &(name, _) in PROFILE_NAMES {
            let p = StorageProfile::parse(name).expect("listed profile must parse");
            assert_eq!(p.name(), name);
        }
        assert!(StorageProfile::parse("floppy").is_none());
    }

    #[test]
    fn local_profile_has_no_remote_domain() {
        assert!(StorageProfile::Local.remote_device().is_none());
        assert!(StorageProfile::default().is_local());
    }

    #[test]
    fn object_store_latency_dominates_small_requests() {
        let dev = StorageProfile::s3().remote_device().unwrap();
        let small = dev.bandwidth(IoDir::Read, Bytes::from_kib(4));
        let big = dev.bandwidth(IoDir::Read, Bytes::from_mib(128));
        // 4 KiB / 30 ms ≈ 133 KiB/s; 128 MiB requests amortize the latency
        // (rs/peak = 12.5 ms vs the 30 ms round trip → ~29% of peak).
        assert!(small.as_mib_per_sec() < 0.2, "got {small}");
        assert!(big.as_mib_per_sec() > 2048.0, "got {big}");
    }

    #[test]
    fn lustre_is_diskless_with_stripe_cap() {
        let p = StorageProfile::lustre();
        assert!(p.diskless());
        assert_eq!(p.remote_stream_cap(), Some(Rate::gib_per_sec(2.0)));
        assert!(StorageProfile::s3().remote_stream_cap().is_none());
    }

    #[test]
    fn hit_ratio_edge_cases() {
        assert_eq!(hit_ratio(Bytes::ZERO, Bytes::ZERO), 1.0);
        assert_eq!(hit_ratio(Bytes::from_gib(1), Bytes::ZERO), 0.0);
        assert_eq!(hit_ratio(Bytes::from_gib(1), Bytes::from_gib(2)), 1.0);
        assert_eq!(hit_ratio(Bytes::from_gib(4), Bytes::from_gib(1)), 0.25);
    }

    #[test]
    fn cached_profile_scales_hit_ratio_with_node_count() {
        let p = StorageProfile::s3_cached();
        let ws = Bytes::from_gib(256);
        let h1 = p.cache_hit_ratio(ws, 1);
        let h4 = p.cache_hit_ratio(ws, 4);
        assert!((h1 - 0.25).abs() < 1e-12);
        assert!((h4 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_fingerprint_distinctly() {
        let fps: Vec<Fingerprint> = PROFILE_NAMES
            .iter()
            .map(|&(name, _)| fp_of(&StorageProfile::parse(name).unwrap()))
            .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "profiles {i} and {j} alias");
            }
        }
        // Changing only the cache capacity changes the fingerprint.
        let mut cached = StorageProfile::s3_cached();
        if let StorageProfile::Cached(c) = &mut cached {
            c.capacity_per_node = Bytes::from_gib(65);
        }
        assert_ne!(fp_of(&cached), fp_of(&StorageProfile::s3_cached()));
    }

    proptest! {
        /// Satellite: hit-ratio math is monotone in cache size and bounded.
        #[test]
        fn hit_ratio_monotone_in_cache_size(
            ws_mib in 1u64..=1_000_000,
            cap_a in 0u64..=1_000_000,
            cap_b in 0u64..=1_000_000,
        ) {
            let ws = Bytes::from_mib(ws_mib);
            let (lo, hi) = (cap_a.min(cap_b), cap_a.max(cap_b));
            let h_lo = hit_ratio(ws, Bytes::from_mib(lo));
            let h_hi = hit_ratio(ws, Bytes::from_mib(hi));
            prop_assert!((0.0..=1.0).contains(&h_lo));
            prop_assert!((0.0..=1.0).contains(&h_hi));
            prop_assert!(h_lo <= h_hi, "hit ratio must be monotone in capacity");
        }
    }
}
