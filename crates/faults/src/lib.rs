//! Deterministic fault injection for the Doppio simulator.
//!
//! Real Spark 1.6 deployments survive failures through lineage: failed
//! tasks are retried (`spark.task.maxFailures`), lost map outputs are
//! recomputed by resubmitting partial map stages, evicted cached RDDs are
//! rebuilt from their parents, and stragglers are raced by speculative
//! copies (`spark.speculation`). The simulator models those mechanisms;
//! this crate provides the *inputs* — a [`FaultPlan`] describing which
//! faults strike where and when.
//!
//! Everything is seed-driven. A plan is either assembled event by event
//! ([`FaultPlan::with_event`]) or generated from a named [`FaultProfile`]
//! plus a seed, and the same `(profile, seed, cluster, horizon)` tuple
//! always yields the same plan. Within the simulator, injected failures
//! draw from a dedicated RNG seeded by [`FaultPlan::seed`], so fault
//! placement never perturbs the simulation's own noise stream and a fixed
//! fault seed replays identically at any worker-thread count.
//!
//! Plans are [`Fingerprintable`]: a faulty run of a scenario hashes
//! differently from a clean run of the same scenario, so memoization
//! layers never alias the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use doppio_cluster::DiskRole;
use doppio_engine::{FingerprintBuilder, Fingerprintable};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One injectable fault.
///
/// Times are simulation seconds; fractions are in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Transient task failures: `tasks` distinct task picks (drawn from the
    /// plan's RNG per matching stage) each fail `attempts` times, at
    /// `at_fraction` of the attempt's expected duration, before succeeding.
    ///
    /// `stage: None` applies to every stage the scheduler runs;
    /// `Some(name)` only to the first occurrence of that stage name.
    /// Models Spark's `TaskEndReason::ExceptionFailure` + retry.
    TaskFailures {
        /// Stage name filter (`None` = all stages).
        stage: Option<String>,
        /// Number of task picks per matching stage.
        tasks: u64,
        /// Failed attempts per picked task before it may succeed.
        attempts: u32,
        /// Fraction of the attempt's expected duration at which it dies.
        at_fraction: f64,
    },
    /// A worker node dies at `at_secs`: its running tasks fail, its queued
    /// tasks migrate, and the shuffle outputs and cached partitions it
    /// held are lost (triggering lineage recomputation downstream).
    /// Models Spark's `ExecutorLostFailure` / `FetchFailed` path.
    ExecutorLoss {
        /// Which worker node dies.
        node: usize,
        /// When it dies, in simulation seconds.
        at_secs: f64,
    },
    /// One device on one node runs at `factor` of its normal bandwidth
    /// for the window `[from_secs, until_secs)`. Only transfers submitted
    /// inside the window are affected.
    DiskSlowdown {
        /// Which worker node owns the slow device.
        node: usize,
        /// Which of the node's devices degrades.
        role: DiskRole,
        /// Bandwidth multiplier in `(0, 1)` — e.g. `0.3` = 30 % speed.
        factor: f64,
        /// Window start, simulation seconds.
        from_secs: f64,
        /// Window end, simulation seconds.
        until_secs: f64,
    },
    /// Task attempts started on `node` during `[from_secs, until_secs)`
    /// run their compute phase `factor`× slower, on up to `slots`
    /// concurrent core slots (`None` = every core). The slow tasks are
    /// exactly what `spark.speculation` exists to race.
    Straggler {
        /// Which worker node straggles.
        node: usize,
        /// Max concurrently-slowed core slots (`None` = unlimited).
        slots: Option<u32>,
        /// Compute-time multiplier, `> 1`.
        factor: f64,
        /// Window start, simulation seconds.
        from_secs: f64,
        /// Window end, simulation seconds.
        until_secs: f64,
    },
}

/// A replayable set of faults plus the seed that drives in-simulator
/// randomness (which task a [`FaultEvent::TaskFailures`] strikes).
///
/// The empty plan is the identity: simulating with it is bit-identical to
/// simulating without any fault support at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::empty()
    }
}

impl FaultPlan {
    /// The no-fault plan.
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// An empty plan carrying `seed` for in-simulator fault randomness.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds an event in place.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The seed driving in-simulator fault randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn write_role(b: &mut FingerprintBuilder, role: DiskRole) {
    b.write_u64(match role {
        DiskRole::Hdfs => 0,
        DiskRole::Local => 1,
    });
}

impl Fingerprintable for FaultPlan {
    fn fingerprint_into(&self, b: &mut FingerprintBuilder) {
        b.write_str("fault-plan");
        b.write_u64(self.seed);
        b.write_usize(self.events.len());
        for event in &self.events {
            match event {
                FaultEvent::TaskFailures {
                    stage,
                    tasks,
                    attempts,
                    at_fraction,
                } => {
                    b.write_u64(1);
                    match stage {
                        None => b.write_bool(false),
                        Some(s) => {
                            b.write_bool(true);
                            b.write_str(s);
                        }
                    }
                    b.write_u64(*tasks);
                    b.write_u32(*attempts);
                    b.write_f64(*at_fraction);
                }
                FaultEvent::ExecutorLoss { node, at_secs } => {
                    b.write_u64(2);
                    b.write_usize(*node);
                    b.write_f64(*at_secs);
                }
                FaultEvent::DiskSlowdown {
                    node,
                    role,
                    factor,
                    from_secs,
                    until_secs,
                } => {
                    b.write_u64(3);
                    b.write_usize(*node);
                    write_role(b, *role);
                    b.write_f64(*factor);
                    b.write_f64(*from_secs);
                    b.write_f64(*until_secs);
                }
                FaultEvent::Straggler {
                    node,
                    slots,
                    factor,
                    from_secs,
                    until_secs,
                } => {
                    b.write_u64(4);
                    b.write_usize(*node);
                    match slots {
                        None => b.write_bool(false),
                        Some(s) => {
                            b.write_bool(true);
                            b.write_u32(*s);
                        }
                    }
                    b.write_f64(*factor);
                    b.write_f64(*from_secs);
                    b.write_f64(*until_secs);
                }
            }
        }
    }
}

/// Named fault scenarios the CLI exposes via `simulate --inject`.
///
/// A profile is a recipe: [`FaultProfile::plan`] expands it into a
/// concrete [`FaultPlan`] for a given seed, cluster size and time horizon
/// (typically the clean run's total time), deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// A couple of transient task failures per stage — the background
    /// noise of any large cluster.
    FlakyTasks,
    /// One worker dies partway through the run, taking its shuffle
    /// outputs and cached partitions with it.
    ExecutorLoss,
    /// One node's Spark-local disk degrades to a fraction of its
    /// bandwidth for a window — Awan et al.'s slow-disk tail.
    SlowDisk,
    /// One node computes slowly on a couple of core slots for most of the
    /// run — the classic speculative-execution target.
    Stragglers,
    /// All of the above at once.
    Chaos,
}

impl FaultProfile {
    /// Every profile, in CLI listing order.
    pub const ALL: [FaultProfile; 5] = [
        FaultProfile::FlakyTasks,
        FaultProfile::ExecutorLoss,
        FaultProfile::SlowDisk,
        FaultProfile::Stragglers,
        FaultProfile::Chaos,
    ];

    /// The CLI name of the profile.
    pub fn name(&self) -> &'static str {
        match self {
            FaultProfile::FlakyTasks => "flaky-tasks",
            FaultProfile::ExecutorLoss => "executor-loss",
            FaultProfile::SlowDisk => "slow-disk",
            FaultProfile::Stragglers => "stragglers",
            FaultProfile::Chaos => "chaos",
        }
    }

    /// One-line description for `doppio list`.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultProfile::FlakyTasks => {
                "transient task failures, retried up to spark.task.maxFailures"
            }
            FaultProfile::ExecutorLoss => {
                "a worker dies mid-run; lost shuffle output is recomputed via lineage"
            }
            FaultProfile::SlowDisk => "one Spark-local disk runs degraded for a window of the run",
            FaultProfile::Stragglers => "slow core slots on one node; pair with spark.speculation",
            FaultProfile::Chaos => "all of the above in one run",
        }
    }

    /// Parses a CLI profile name.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        FaultProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Expands the profile into a concrete plan for a cluster of `nodes`
    /// workers and a run expected to last about `horizon_secs`.
    /// Deterministic in all three arguments.
    pub fn plan(&self, seed: u64, nodes: usize, horizon_secs: f64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD0_FA_17);
        let nodes = nodes.max(1);
        let horizon = if horizon_secs.is_finite() && horizon_secs > 1.0 {
            horizon_secs
        } else {
            1.0
        };
        let mut plan = FaultPlan::new(seed);
        let flaky = |rng: &mut StdRng, plan: &mut FaultPlan| {
            plan.push(FaultEvent::TaskFailures {
                stage: None,
                tasks: 2,
                attempts: rng.random_range(1..=2u32),
                at_fraction: rng.random_range(0.1..0.9),
            });
        };
        let loss = |rng: &mut StdRng, plan: &mut FaultPlan| {
            plan.push(FaultEvent::ExecutorLoss {
                node: rng.random_range(0..nodes),
                at_secs: rng.random_range(0.2..0.6) * horizon,
            });
        };
        let slow_disk = |rng: &mut StdRng, plan: &mut FaultPlan| {
            let from = rng.random_range(0.05..0.3) * horizon;
            plan.push(FaultEvent::DiskSlowdown {
                node: rng.random_range(0..nodes),
                role: DiskRole::Local,
                factor: rng.random_range(0.2..0.5),
                from_secs: from,
                until_secs: from + rng.random_range(0.3..0.6) * horizon,
            });
        };
        let straggler = |rng: &mut StdRng, plan: &mut FaultPlan| {
            plan.push(FaultEvent::Straggler {
                node: rng.random_range(0..nodes),
                slots: Some(2),
                factor: rng.random_range(1.5..3.0),
                from_secs: 0.0,
                until_secs: horizon * 2.0,
            });
        };
        match self {
            FaultProfile::FlakyTasks => flaky(&mut rng, &mut plan),
            FaultProfile::ExecutorLoss => loss(&mut rng, &mut plan),
            FaultProfile::SlowDisk => slow_disk(&mut rng, &mut plan),
            FaultProfile::Stragglers => straggler(&mut rng, &mut plan),
            FaultProfile::Chaos => {
                flaky(&mut rng, &mut plan);
                slow_disk(&mut rng, &mut plan);
                straggler(&mut rng, &mut plan);
                // Losing a node out of one or two leaves too little
                // cluster to be interesting; keep chaos survivable.
                if nodes > 2 {
                    loss(&mut rng, &mut plan);
                }
            }
        }
        plan
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_expansion_is_deterministic() {
        for profile in FaultProfile::ALL {
            let a = profile.plan(7, 3, 120.0);
            let b = profile.plan(7, 3, 120.0);
            assert_eq!(a, b, "{profile} must expand deterministically");
            assert!(!a.is_empty());
            assert_eq!(a.seed(), 7);
        }
    }

    #[test]
    fn profile_expansion_depends_on_the_seed() {
        let a = FaultProfile::Chaos.plan(1, 3, 120.0);
        let b = FaultProfile::Chaos.plan(2, 3, 120.0);
        assert_ne!(a, b);
    }

    #[test]
    fn every_profile_name_round_trips() {
        for profile in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(profile.name()), Some(profile));
        }
        assert_eq!(FaultProfile::parse("no-such-profile"), None);
    }

    #[test]
    fn chaos_on_a_small_cluster_never_kills_a_node() {
        let plan = FaultProfile::Chaos.plan(3, 2, 60.0);
        assert!(!plan
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::ExecutorLoss { .. })));
    }

    #[test]
    fn distinct_plans_fingerprint_differently() {
        let clean = FaultPlan::empty().fingerprint();
        let faulty = FaultProfile::FlakyTasks.plan(1, 3, 60.0).fingerprint();
        let faulty2 = FaultProfile::FlakyTasks.plan(2, 3, 60.0).fingerprint();
        assert_ne!(clean, faulty);
        assert_ne!(faulty, faulty2);
        // Same plan, same print.
        assert_eq!(
            FaultProfile::Chaos.plan(9, 3, 60.0).fingerprint(),
            FaultProfile::Chaos.plan(9, 3, 60.0).fingerprint(),
        );
    }

    #[test]
    fn seed_alone_distinguishes_otherwise_equal_plans() {
        let a = FaultPlan::new(1).fingerprint();
        let b = FaultPlan::new(2).fingerprint();
        assert_ne!(a, b);
    }
}
