//! Read and write plans: the physical I/O a DFS access implies.

use doppio_cluster::NodeId;
use doppio_events::Bytes;

use crate::{DfsError, Namenode};

/// The physical I/O needed to read one block from a given node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRead {
    /// Block index within the file.
    pub index: u64,
    /// Node whose HDFS disk serves the read.
    pub source: NodeId,
    /// Bytes read.
    pub bytes: Bytes,
    /// True when the chosen replica is on the reader's own node (no network
    /// hop needed).
    pub local: bool,
}

/// The physical I/O needed to write one block with replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockWrite {
    /// Block index within the file.
    pub index: u64,
    /// Bytes written (per replica).
    pub bytes: Bytes,
    /// All nodes whose HDFS disk receives a copy, pipeline order (primary
    /// first).
    pub targets: Vec<NodeId>,
    /// Nodes reached over the network (every target except a writer-local
    /// primary).
    pub remote_targets: Vec<NodeId>,
}

impl Namenode {
    /// Plans a whole-file read from `reader`: for each block, the replica is
    /// chosen local-first, falling back to the replica list deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::NotFound`] for unknown paths.
    pub fn read_plan(&self, path: &str, reader: NodeId) -> Result<Vec<BlockRead>, DfsError> {
        let file = self.file(path)?;
        Ok(file
            .blocks()
            .iter()
            .map(|b| {
                let local = b.replicas.iter().find(|r| **r == reader);
                let (source, is_local) = match local {
                    Some(&r) => (r, true),
                    None => (b.replicas[b.index as usize % b.replicas.len()], false),
                };
                BlockRead {
                    index: b.index,
                    source,
                    bytes: b.len,
                    local: is_local,
                }
            })
            .collect())
    }

    /// Plans the read of a single block by `reader` (used when map tasks are
    /// scheduled one-per-block).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::NotFound`] for unknown paths and
    /// [`DfsError::EmptyFile`] if the block index is out of range.
    pub fn block_read_plan(
        &self,
        path: &str,
        index: u64,
        reader: NodeId,
    ) -> Result<BlockRead, DfsError> {
        let file = self.file(path)?;
        let b = file
            .blocks()
            .get(index as usize)
            .ok_or_else(|| DfsError::EmptyFile(path.to_string()))?;
        let local = b.replicas.contains(&reader);
        let source = if local {
            reader
        } else {
            b.replicas[b.index as usize % b.replicas.len()]
        };
        Ok(BlockRead {
            index,
            source,
            bytes: b.len,
            local,
        })
    }

    /// Plans a file write of `len` bytes from `writer`: creates the file
    /// (with writer affinity) and returns, per block, which disks receive a
    /// copy and which copies cross the network.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::FileExists`] if the path is taken.
    pub fn write_plan(
        &mut self,
        path: impl Into<String>,
        len: Bytes,
        writer: NodeId,
    ) -> Result<Vec<BlockWrite>, DfsError> {
        let path = path.into();
        let file = self.create_file(path, len, Some(writer))?;
        Ok(file
            .blocks()
            .iter()
            .map(|b| {
                let remote_targets = b
                    .replicas
                    .iter()
                    .copied()
                    .filter(|r| *r != writer)
                    .collect();
                BlockWrite {
                    index: b.index,
                    bytes: b.len,
                    targets: b.replicas.clone(),
                    remote_targets,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsConfig;

    fn nn(nodes: usize) -> Namenode {
        Namenode::new(DfsConfig::paper(), nodes)
    }

    #[test]
    fn read_plan_prefers_local_replica() {
        let mut n = nn(4);
        n.create_file("/a", Bytes::from_gib(2), None).unwrap();
        let plan = n.read_plan("/a", NodeId(1)).unwrap();
        for r in &plan {
            if r.local {
                assert_eq!(r.source, NodeId(1));
            } else {
                assert_ne!(r.source, NodeId(1));
            }
        }
        // With 16 blocks round-robined over 4 nodes and replication 2, about
        // half the blocks (16 * 2/4) have a replica on any given node.
        let local = plan.iter().filter(|r| r.local).count();
        assert!((6..=10).contains(&local), "local reads = {local}");
    }

    #[test]
    fn read_plan_covers_whole_file() {
        let mut n = nn(3);
        n.create_file("/a", Bytes::from_mib(300), None).unwrap();
        let plan = n.read_plan("/a", NodeId(0)).unwrap();
        let total: Bytes = plan.iter().map(|r| r.bytes).sum();
        assert_eq!(total, Bytes::from_mib(300));
    }

    #[test]
    fn block_read_plan_matches_file_plan() {
        let mut n = nn(4);
        n.create_file("/a", Bytes::from_gib(1), None).unwrap();
        let whole = n.read_plan("/a", NodeId(2)).unwrap();
        for (i, expect) in whole.iter().enumerate() {
            let one = n.block_read_plan("/a", i as u64, NodeId(2)).unwrap();
            assert_eq!(&one, expect);
        }
        assert!(n.block_read_plan("/a", 999, NodeId(0)).is_err());
    }

    #[test]
    fn write_plan_has_replication_amplification() {
        let mut n = nn(4);
        let plan = n.write_plan("/out", Bytes::from_gib(1), NodeId(0)).unwrap();
        assert_eq!(plan.len(), 8);
        for w in &plan {
            assert_eq!(w.targets.len(), 2);
            assert_eq!(w.targets[0], NodeId(0), "primary replica is writer-local");
            assert_eq!(w.remote_targets.len(), 1, "one copy crosses the network");
            assert_ne!(w.remote_targets[0], NodeId(0));
        }
        // Total disk bytes = 2x file size; network bytes = 1x file size.
        let disk: u64 = plan
            .iter()
            .map(|w| w.bytes.as_u64() * w.targets.len() as u64)
            .sum();
        assert_eq!(disk, 2 * Bytes::from_gib(1).as_u64());
    }

    #[test]
    fn missing_file_read_errors() {
        let n = nn(2);
        assert!(matches!(
            n.read_plan("/nope", NodeId(0)),
            Err(DfsError::NotFound(_))
        ));
    }
}
