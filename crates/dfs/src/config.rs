//! DFS configuration.

use doppio_events::Bytes;

/// Configuration of the distributed file system.
///
/// Mirrors the two `hdfs-site.xml` knobs the paper lists in Table II:
/// `dfs.blocksize` and `dfs.replication`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Block size (`dfs.blocksize`); determines the map-task count of every
    /// HDFS-input stage and the request size of HDFS I/O.
    pub block_size: Bytes,
    /// Replication factor (`dfs.replication`); determines write
    /// amplification.
    pub replication: u32,
}

impl DfsConfig {
    /// The paper's configuration: 128 MB blocks, replication 2 (Table II).
    pub fn paper() -> Self {
        DfsConfig {
            block_size: Bytes::from_mib(128),
            replication: 2,
        }
    }

    /// Returns a copy with a different block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(mut self, block_size: Bytes) -> Self {
        assert!(!block_size.is_zero(), "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Returns a copy with a different replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero.
    pub fn with_replication(mut self, replication: u32) -> Self {
        assert!(replication > 0, "replication factor must be at least 1");
        self.replication = replication;
        self
    }
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = DfsConfig::paper();
        assert_eq!(c.block_size, Bytes::from_mib(128));
        assert_eq!(c.replication, 2);
        assert_eq!(DfsConfig::default(), c);
    }

    #[test]
    fn builders() {
        let c = DfsConfig::paper()
            .with_block_size(Bytes::from_mib(64))
            .with_replication(3);
        assert_eq!(c.block_size, Bytes::from_mib(64));
        assert_eq!(c.replication, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_replication_rejected() {
        let _ = DfsConfig::paper().with_replication(0);
    }
}
