//! An HDFS-like distributed file system simulation.
//!
//! The paper's workloads read their inputs from and write their outputs to
//! HDFS 2.6 with 128 MB blocks and a replication factor of 2 (Table II).
//! Three properties of HDFS matter to the Doppio model and are reproduced
//! here:
//!
//! 1. **Files are block-striped across nodes** — the number of map tasks of
//!    an input stage equals the number of blocks (`M = file size / 128 MB`,
//!    Section III-C2), and block reads are large sequential requests, which
//!    is why HDFS I/O sees only the 3.7× HDD/SSD gap instead of the 32×
//!    shuffle-read gap.
//! 2. **Reads are locality-aware** — a reader prefers a replica on its own
//!    node and otherwise pulls the block over the network.
//! 3. **Writes are replicated through a pipeline** — every block write costs
//!    `replication` disk writes plus `replication − 1` network transfers,
//!    the write amplification visible in the paper's HDFS-write-bound SF
//!    stage.
//!
//! # Example
//!
//! ```
//! use doppio_dfs::{DfsConfig, Namenode};
//! use doppio_events::Bytes;
//! use doppio_cluster::NodeId;
//!
//! let mut nn = Namenode::new(DfsConfig::paper(), 4);
//! let file = nn.create_file("/genome.bam", Bytes::from_gib(2), None).unwrap();
//! assert_eq!(file.blocks().len(), 16); // 2 GiB / 128 MiB
//! let plan = nn.read_plan("/genome.bam", NodeId(0)).unwrap();
//! assert_eq!(plan.len(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod namenode;
mod plan;

pub use config::DfsConfig;
pub use namenode::{BlockMeta, DfsError, FileMeta, Namenode};
pub use plan::{BlockRead, BlockWrite};
