//! File metadata and block placement.

use std::collections::HashMap;
use std::fmt;

use doppio_cluster::NodeId;
use doppio_events::Bytes;

use crate::DfsConfig;

/// Errors returned by namenode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path already exists.
    FileExists(String),
    /// The path does not exist.
    NotFound(String),
    /// The requested file is empty (zero-length files carry no blocks).
    EmptyFile(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::NotFound(p) => write!(f, "file not found: {p}"),
            DfsError::EmptyFile(p) => write!(f, "file is empty: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Metadata of one file block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index of the block within its file.
    pub index: u64,
    /// Block length (the last block of a file may be short).
    pub len: Bytes,
    /// Nodes holding a replica, primary first.
    pub replicas: Vec<NodeId>,
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    path: String,
    len: Bytes,
    blocks: Vec<BlockMeta>,
}

impl FileMeta {
    /// File path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Total file length.
    pub fn len(&self) -> Bytes {
        self.len
    }

    /// True for zero-length files.
    pub fn is_empty(&self) -> bool {
        self.len.is_zero()
    }

    /// The file's blocks in order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }
}

/// The DFS namenode: file table plus deterministic block placement.
///
/// Placement is round-robin with a per-file offset: block `i` of the `k`-th
/// file created gets its primary replica on node `(i + k) % n` and its
/// additional replicas on the following nodes. Determinism keeps simulations
/// reproducible; round-robin gives the even spread a healthy HDFS balancer
/// maintains.
#[derive(Debug, Clone)]
pub struct Namenode {
    config: DfsConfig,
    num_nodes: usize,
    files: HashMap<String, FileMeta>,
    files_created: usize,
}

impl Namenode {
    /// Creates a namenode for a cluster of `num_nodes` datanodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(config: DfsConfig, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "a DFS needs at least one datanode");
        Namenode {
            config,
            num_nodes,
            files: HashMap::new(),
            files_created: 0,
        }
    }

    /// The file system configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Number of datanodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Creates a file of `len` bytes and places its blocks.
    ///
    /// When `writer` is given, the primary replica of every block lands on
    /// the writer's node (HDFS local-write affinity); otherwise primaries
    /// rotate round-robin.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::FileExists`] if the path is taken.
    pub fn create_file(
        &mut self,
        path: impl Into<String>,
        len: Bytes,
        writer: Option<NodeId>,
    ) -> Result<&FileMeta, DfsError> {
        let path = path.into();
        if self.files.contains_key(&path) {
            return Err(DfsError::FileExists(path));
        }
        let replication = (self.config.replication as usize).min(self.num_nodes);
        let bs = self.config.block_size;
        let n_blocks = if len.is_zero() {
            0
        } else {
            len.div_ceil_by(bs)
        };
        let offset = self.files_created;
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        let mut remaining = len;
        for i in 0..n_blocks {
            let blen = remaining.min(bs);
            remaining = remaining.saturating_sub(bs);
            let primary = match writer {
                Some(w) => w.0 % self.num_nodes,
                None => (i as usize + offset) % self.num_nodes,
            };
            let replicas = (0..replication)
                .map(|r| {
                    if r == 0 {
                        NodeId(primary)
                    } else {
                        // Secondary replicas spread relative to the block
                        // index so a single writer does not pile replicas on
                        // one neighbour.
                        NodeId(
                            (primary + 1 + (i as usize + r - 1) % (self.num_nodes - 1).max(1))
                                % self.num_nodes,
                        )
                    }
                })
                .collect();
            blocks.push(BlockMeta {
                index: i,
                len: blen,
                replicas,
            });
        }
        self.files_created += 1;
        let meta = FileMeta {
            path: path.clone(),
            len,
            blocks,
        };
        Ok(self.files.entry(path).or_insert(meta))
    }

    /// Looks up a file.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::NotFound`] for unknown paths.
    pub fn file(&self, path: &str) -> Result<&FileMeta, DfsError> {
        self.files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Removes a file; returns its metadata if it existed.
    pub fn delete_file(&mut self, path: &str) -> Option<FileMeta> {
        self.files.remove(path)
    }

    /// True when the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nn(nodes: usize) -> Namenode {
        Namenode::new(DfsConfig::paper(), nodes)
    }

    #[test]
    fn block_count_is_ceiling_division() {
        let mut n = nn(3);
        let f = n.create_file("/a", Bytes::from_mib(300), None).unwrap();
        assert_eq!(f.blocks().len(), 3);
        assert_eq!(f.blocks()[0].len, Bytes::from_mib(128));
        assert_eq!(f.blocks()[2].len, Bytes::from_mib(44));
        let total: Bytes = f.blocks().iter().map(|b| b.len).sum();
        assert_eq!(total, Bytes::from_mib(300));
    }

    #[test]
    fn paper_input_file_block_count() {
        // 122 GiB input / 128 MiB blocks = 976 map tasks.
        let mut n = nn(10);
        let f = n
            .create_file("/hcc1954.bam", Bytes::from_gib(122), None)
            .unwrap();
        assert_eq!(f.blocks().len(), 976);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let mut n = nn(4);
        let f = n.create_file("/a", Bytes::from_gib(1), None).unwrap();
        for b in f.blocks() {
            assert_eq!(b.replicas.len(), 2);
            assert_ne!(b.replicas[0], b.replicas[1], "replicas must differ");
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let mut n = Namenode::new(DfsConfig::paper().with_replication(3), 2);
        let f = n.create_file("/a", Bytes::from_mib(128), None).unwrap();
        assert_eq!(f.blocks()[0].replicas.len(), 2);
    }

    #[test]
    fn writer_affinity_places_primary_locally() {
        let mut n = nn(4);
        let f = n
            .create_file("/out", Bytes::from_gib(1), Some(NodeId(2)))
            .unwrap();
        for b in f.blocks() {
            assert_eq!(b.replicas[0], NodeId(2));
        }
    }

    #[test]
    fn round_robin_spreads_primaries_evenly() {
        let mut n = nn(4);
        let f = n.create_file("/a", Bytes::from_gib(2), None).unwrap(); // 16 blocks
        let mut counts = [0usize; 4];
        for b in f.blocks() {
            counts[b.replicas[0].0] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut n = nn(2);
        n.create_file("/a", Bytes::from_mib(1), None).unwrap();
        assert_eq!(
            n.create_file("/a", Bytes::from_mib(1), None).unwrap_err(),
            DfsError::FileExists("/a".into())
        );
    }

    #[test]
    fn lookup_and_delete() {
        let mut n = nn(2);
        n.create_file("/a", Bytes::from_mib(1), None).unwrap();
        assert!(n.exists("/a"));
        assert_eq!(n.file("/a").unwrap().len(), Bytes::from_mib(1));
        assert!(n.delete_file("/a").is_some());
        assert!(matches!(n.file("/a"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let mut n = nn(2);
        let f = n.create_file("/e", Bytes::ZERO, None).unwrap();
        assert!(f.is_empty());
        assert!(f.blocks().is_empty());
    }

    #[test]
    fn single_node_cluster_replicates_once() {
        let mut n = Namenode::new(DfsConfig::paper(), 1);
        let f = n.create_file("/a", Bytes::from_mib(256), None).unwrap();
        for b in f.blocks() {
            assert_eq!(b.replicas, vec![NodeId(0)]);
        }
    }
}
