//! Property tests for the DFS: placement balance, conservation, and plan
//! consistency.

use doppio_cluster::NodeId;
use doppio_dfs::{DfsConfig, Namenode};
use doppio_events::Bytes;
use proptest::prelude::*;

proptest! {
    /// Block math: blocks cover the file exactly, only the last block may
    /// be short, and every replica set has the configured size with
    /// distinct nodes.
    #[test]
    fn blocks_cover_file(
        len_mib in 1u64..10_000,
        block_mib in prop::sample::select(vec![32u64, 64, 128, 256]),
        nodes in 1usize..12,
        replication in 1u32..4,
    ) {
        let cfg = DfsConfig::paper()
            .with_block_size(Bytes::from_mib(block_mib))
            .with_replication(replication);
        let mut nn = Namenode::new(cfg, nodes);
        let len = Bytes::from_mib(len_mib);
        let f = nn.create_file("/f", len, None).unwrap();
        let total: Bytes = f.blocks().iter().map(|b| b.len).sum();
        prop_assert_eq!(total, len);
        for (i, b) in f.blocks().iter().enumerate() {
            if i + 1 < f.blocks().len() {
                prop_assert_eq!(b.len, Bytes::from_mib(block_mib));
            }
            prop_assert_eq!(b.replicas.len(), (replication as usize).min(nodes));
            let mut sorted = b.replicas.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), b.replicas.len(), "replicas distinct");
            for r in &b.replicas {
                prop_assert!(r.0 < nodes);
            }
        }
    }

    /// Placement balance: primary replicas spread within one block of even.
    #[test]
    fn primaries_are_balanced(
        blocks in 4u64..200,
        nodes in 2usize..10,
    ) {
        let mut nn = Namenode::new(DfsConfig::paper(), nodes);
        let len = Bytes::from_mib(128) * blocks;
        let f = nn.create_file("/f", len, None).unwrap();
        let mut counts = vec![0i64; nodes];
        for b in f.blocks() {
            counts[b.replicas[0].0] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "counts = {counts:?}");
    }

    /// Read plans cover the file and choose only real replicas.
    #[test]
    fn read_plans_are_consistent(
        blocks in 1u64..100,
        nodes in 1usize..8,
        reader in 0usize..8,
    ) {
        let reader = NodeId(reader % nodes);
        let mut nn = Namenode::new(DfsConfig::paper(), nodes);
        let len = Bytes::from_mib(128) * blocks;
        nn.create_file("/f", len, None).unwrap();
        let plan = nn.read_plan("/f", reader).unwrap();
        prop_assert_eq!(plan.len() as u64, blocks);
        let meta = nn.file("/f").unwrap();
        for (r, b) in plan.iter().zip(meta.blocks()) {
            prop_assert!(b.replicas.contains(&r.source));
            prop_assert_eq!(r.local, r.source == reader);
            if b.replicas.contains(&reader) {
                prop_assert!(r.local, "local replica must be preferred");
            }
        }
    }

    /// Write plans: replication-many targets per block, writer-local
    /// primary, and remote targets exactly the non-writer replicas.
    #[test]
    fn write_plans_account_replication(
        blocks in 1u64..50,
        nodes in 2usize..8,
        writer in 0usize..8,
    ) {
        let writer = NodeId(writer % nodes);
        let mut nn = Namenode::new(DfsConfig::paper(), nodes);
        let len = Bytes::from_mib(128) * blocks;
        let plan = nn.write_plan("/out", len, writer).unwrap();
        prop_assert_eq!(plan.len() as u64, blocks);
        for w in &plan {
            prop_assert_eq!(w.targets[0], writer);
            prop_assert_eq!(w.remote_targets.len(), w.targets.len() - 1);
            for r in &w.remote_targets {
                prop_assert!(*r != writer);
                prop_assert!(w.targets.contains(r));
            }
        }
    }
}
