//! Device presets anchored to the paper's measurements.
//!
//! The read curves are calibrated so the three HDD/SSD bandwidth gaps the
//! paper reports in Section III-C1 hold exactly:
//!
//! * **181×** at 4 KB requests,
//! * **32×** at 30 KB requests (15 MB/s HDD vs 480 MB/s SSD — the GATK4
//!   shuffle read segment size),
//! * **3.7×** at 128 MB requests (a full HDFS block).
//!
//! The HDD write peak is 100 MB/s, the paper's measured `BW_write` for the
//! large sorted chunks of shuffle write (Section V-A1).

use doppio_events::{Bytes, Rate};

use crate::{BandwidthCurve, DeviceSpec};

fn pts(raw: &[(u64, f64)]) -> BandwidthCurve {
    let v: Vec<(Bytes, Rate)> = raw
        .iter()
        .map(|&(kib, mibps)| (Bytes::from_kib(kib), Rate::mib_per_sec(mibps)))
        .collect();
    BandwidthCurve::from_points(&v)
}

/// The paper's HDD: Western Digital 4000FYYZ-01UL1B2, 7200 RPM, 4 TB
/// (Table I). Read curve anchored to Fig. 5a; write peak 100 MB/s per
/// Section V-A1.
pub fn hdd_wd4000() -> DeviceSpec {
    let read = pts(&[
        (4, 2.1),
        (30, 15.0),
        (128, 42.0),
        (512, 85.0),
        (4096, 120.0),
        (32768, 134.0),
        (131072, 137.8),
    ]);
    let write = pts(&[
        (4, 1.9),
        (30, 13.0),
        (128, 38.0),
        (512, 70.0),
        (4096, 88.0),
        (32768, 97.0),
        (131072, 100.0),
    ]);
    DeviceSpec::new("WD4000FYYZ-HDD", read, write).with_capacity(Bytes::from_tib(4))
}

/// The paper's SSD: Samsung MZ7LM240HCGR (PM863), 240 GB SATA (Table I).
/// Read curve anchored to Fig. 5b.
pub fn ssd_mz7lm() -> DeviceSpec {
    let read = pts(&[
        (4, 380.0),
        (30, 480.0),
        (128, 500.0),
        (512, 505.0),
        (4096, 508.0),
        (131072, 510.0),
    ]);
    let write = pts(&[
        (4, 180.0),
        (30, 300.0),
        (128, 380.0),
        (512, 420.0),
        (4096, 440.0),
        (131072, 450.0),
    ]);
    DeviceSpec::new("MZ7LM240-SSD", read, write).with_capacity(Bytes::from_gib(240))
}

/// A contemporary NVMe flash device (what-if studies beyond the paper's
/// SATA SSD): ~2.8 GB/s sequential reads and near-flat small-request
/// behaviour. With NVMe as Spark-local, even the 30 KB shuffle-read regime
/// stops being a bottleneck — the natural "what would the paper's Figure 2
/// look like today" experiment.
pub fn nvme_p4510() -> DeviceSpec {
    let read = pts(&[
        (4, 1200.0),
        (30, 2200.0),
        (128, 2600.0),
        (512, 2750.0),
        (4096, 2800.0),
        (131072, 2850.0),
    ]);
    let write = pts(&[
        (4, 800.0),
        (30, 1400.0),
        (128, 1800.0),
        (512, 1950.0),
        (4096, 2000.0),
        (131072, 2050.0),
    ]);
    DeviceSpec::new("P4510-NVMe", read, write).with_capacity(Bytes::from_tib(2))
}

/// A generic rotational disk from the parametric latency model:
/// `BW(rs) = rs / (latency + rs / peak)` for both directions, with the
/// write peak derated to 75% of the read peak.
pub fn parametric_hdd(name: impl Into<String>, read_peak: Rate, latency_secs: f64) -> DeviceSpec {
    let read = BandwidthCurve::from_latency_model(read_peak, latency_secs);
    let write = BandwidthCurve::from_latency_model(read_peak * 0.75, latency_secs);
    DeviceSpec::new(name, read, write)
}

/// A generic flash device from the parametric latency model with a small
/// fixed per-request latency.
pub fn parametric_ssd(name: impl Into<String>, read_peak: Rate, latency_secs: f64) -> DeviceSpec {
    let read = BandwidthCurve::from_latency_model(read_peak, latency_secs);
    let write = BandwidthCurve::from_latency_model(read_peak * 0.88, latency_secs * 2.0);
    DeviceSpec::new(name, read, write)
}

/// Main memory treated as a storage device (for cached-RDD reads): flat
/// 8 GiB/s regardless of "request size".
pub fn ram() -> DeviceSpec {
    let c = BandwidthCurve::flat(Rate::gib_per_sec(8.0));
    DeviceSpec::new("RAM", c.clone(), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoDir;

    #[test]
    fn paper_gap_at_30k_is_32x() {
        let rs = Bytes::from_kib(30);
        let gap = ssd_mz7lm().bandwidth(IoDir::Read, rs) / hdd_wd4000().bandwidth(IoDir::Read, rs);
        assert!((gap - 32.0).abs() < 0.01, "gap = {gap}");
    }

    #[test]
    fn paper_gap_at_4k_is_181x() {
        let rs = Bytes::from_kib(4);
        let gap = ssd_mz7lm().bandwidth(IoDir::Read, rs) / hdd_wd4000().bandwidth(IoDir::Read, rs);
        assert!((gap - 181.0).abs() < 1.0, "gap = {gap}");
    }

    #[test]
    fn paper_gap_at_128m_is_3_7x() {
        let rs = Bytes::from_mib(128);
        let gap = ssd_mz7lm().bandwidth(IoDir::Read, rs) / hdd_wd4000().bandwidth(IoDir::Read, rs);
        assert!((gap - 3.7).abs() < 0.01, "gap = {gap}");
    }

    #[test]
    fn hdd_shuffle_read_bandwidth_is_15() {
        let bw = hdd_wd4000().bandwidth(IoDir::Read, Bytes::from_kib(30));
        assert!((bw.as_mib_per_sec() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_shuffle_write_peak_is_100() {
        // Shuffle write chunks of ~365 MB clamp to the write peak.
        let bw = hdd_wd4000().bandwidth(IoDir::Write, Bytes::from_mib(365));
        assert!((bw.as_mib_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn capacities_match_table_1() {
        assert_eq!(hdd_wd4000().capacity(), Some(Bytes::from_tib(4)));
        assert_eq!(ssd_mz7lm().capacity(), Some(Bytes::from_gib(240)));
    }

    #[test]
    fn parametric_devices_are_well_formed() {
        let d = parametric_hdd("h", Rate::mib_per_sec(140.0), 2e-3);
        assert!(
            d.bandwidth(IoDir::Read, Bytes::from_kib(4))
                .as_mib_per_sec()
                < 5.0
        );
        assert!(
            d.bandwidth(IoDir::Write, Bytes::from_mib(128))
                < d.bandwidth(IoDir::Read, Bytes::from_mib(128))
        );
        let s = parametric_ssd("s", Rate::mib_per_sec(500.0), 5e-6);
        assert!(
            s.bandwidth(IoDir::Read, Bytes::from_kib(4))
                .as_mib_per_sec()
                > 100.0
        );
    }

    #[test]
    fn nvme_dwarfs_the_paper_devices() {
        let rs = Bytes::from_kib(30);
        let nvme = nvme_p4510().bandwidth(IoDir::Read, rs);
        let ssd = ssd_mz7lm().bandwidth(IoDir::Read, rs);
        assert!(nvme / ssd > 4.0, "NVMe {} vs SATA SSD {}", nvme, ssd);
        assert!(
            nvme_p4510().bandwidth(IoDir::Write, rs) < nvme,
            "writes slower"
        );
    }

    #[test]
    fn ram_is_flat() {
        let r = ram();
        assert_eq!(
            r.bandwidth(IoDir::Read, Bytes::from_kib(1)),
            r.bandwidth(IoDir::Read, Bytes::from_gib(2))
        );
    }
}
