//! Effective-bandwidth-vs-request-size curves.

use std::fmt;

use doppio_events::{Bytes, Rate};

/// Effective I/O bandwidth as a function of request size.
///
/// This is the paper's "lookup table for HDD and SSD persistent disk"
/// (Section VI.1): a monotone set of `(request size, bandwidth)` calibration
/// points with log–log linear interpolation between them, clamped at both
/// ends. Monotonicity in request size is validated at construction because
/// every real rotational or flash device exhibits it — the per-request
/// overhead (seek, rotation, FTL lookup) amortizes over larger requests.
///
/// Two constructors are provided:
/// * [`BandwidthCurve::from_points`] — explicit calibration points, used by
///   the presets anchored to the paper's fio measurements (Fig. 5).
/// * [`BandwidthCurve::from_latency_model`] — the classic parametric form
///   `BW(rs) = rs / (latency + rs / peak)`, useful for what-if devices.
///
/// # Example
///
/// ```
/// use doppio_events::{Bytes, Rate};
/// use doppio_storage::BandwidthCurve;
///
/// let curve = BandwidthCurve::from_latency_model(Rate::mib_per_sec(138.0), 1.74e-3);
/// let bw30k = curve.bandwidth(Bytes::from_kib(30));
/// assert!((bw30k.as_mib_per_sec() - 15.0).abs() < 0.5); // paper: HDD 15 MB/s @ 30 KB
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthCurve {
    /// Calibration points, strictly increasing in request size, with
    /// non-decreasing bandwidth. Stored as (bytes, bytes/sec).
    points: Vec<(f64, f64)>,
}

impl BandwidthCurve {
    /// Builds a curve from explicit `(request size, bandwidth)` calibration
    /// points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one point is given, if request sizes are not
    /// strictly increasing, if any bandwidth is non-positive, or if
    /// bandwidth decreases as request size grows.
    pub fn from_points(points: &[(Bytes, Rate)]) -> Self {
        assert!(
            !points.is_empty(),
            "a bandwidth curve needs at least one point"
        );
        let mut v = Vec::with_capacity(points.len());
        for &(rs, bw) in points {
            assert!(rs.as_u64() > 0, "request size must be positive");
            assert!(bw.as_bytes_per_sec() > 0.0, "bandwidth must be positive");
            v.push((rs.as_f64(), bw.as_bytes_per_sec()));
        }
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0, "request sizes must be strictly increasing");
            assert!(
                w[0].1 <= w[1].1,
                "effective bandwidth must be non-decreasing in request size \
                 ({} B/s at {} B vs {} B/s at {} B)",
                w[0].1,
                w[0].0,
                w[1].1,
                w[1].0
            );
        }
        BandwidthCurve { points: v }
    }

    /// Builds a curve from the parametric per-request latency model
    /// `BW(rs) = rs / (latency_secs + rs / peak)`, sampled at power-of-two
    /// request sizes from 4 KiB to 512 MiB.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is zero or `latency_secs` is negative/NaN.
    pub fn from_latency_model(peak: Rate, latency_secs: f64) -> Self {
        assert!(
            peak.as_bytes_per_sec() > 0.0,
            "peak bandwidth must be positive"
        );
        assert!(
            latency_secs.is_finite() && latency_secs >= 0.0,
            "latency must be finite and non-negative"
        );
        let peak_bps = peak.as_bytes_per_sec();
        let mut points = Vec::new();
        let mut rs = 4.0 * 1024.0;
        while rs <= 512.0 * 1024.0 * 1024.0 {
            let bw = rs / (latency_secs + rs / peak_bps);
            points.push((rs, bw));
            rs *= 2.0;
        }
        BandwidthCurve { points }
    }

    /// A flat curve: bandwidth independent of request size (e.g. RAM, or a
    /// throughput-capped virtual disk whose IOPS limit never binds).
    pub fn flat(bw: Rate) -> Self {
        assert!(bw.as_bytes_per_sec() > 0.0, "bandwidth must be positive");
        let bps = bw.as_bytes_per_sec();
        BandwidthCurve {
            points: vec![(1.0, bps), (1024.0 * 1024.0 * 1024.0 * 1024.0, bps)],
        }
    }

    /// Effective bandwidth at the given request size.
    ///
    /// Below the first calibration point the bandwidth scales linearly with
    /// request size (fixed per-request latency dominates); above the last it
    /// is clamped to the peak.
    pub fn bandwidth(&self, request_size: Bytes) -> Rate {
        let rs = request_size.as_f64().max(1.0);
        let pts = &self.points;
        if rs <= pts[0].0 {
            // Latency-dominated regime: IOPS is constant, bandwidth linear in rs.
            return Rate::bytes_per_sec(pts[0].1 * rs / pts[0].0);
        }
        if rs >= pts[pts.len() - 1].0 {
            return Rate::bytes_per_sec(pts[pts.len() - 1].1);
        }
        // Log–log linear interpolation between bracketing points.
        let idx = pts.partition_point(|p| p.0 < rs);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        let t = (rs.ln() - x0.ln()) / (x1.ln() - x0.ln());
        let y = (y0.ln() + t * (y1.ln() - y0.ln())).exp();
        Rate::bytes_per_sec(y)
    }

    /// I/O operations per second sustainable at the given request size
    /// (`bandwidth / request size`) — the other axis of Figure 5.
    pub fn iops(&self, request_size: Bytes) -> f64 {
        self.bandwidth(request_size).as_bytes_per_sec() / request_size.as_f64().max(1.0)
    }

    /// Peak (large-request) bandwidth of the device.
    pub fn peak(&self) -> Rate {
        Rate::bytes_per_sec(self.points[self.points.len() - 1].1)
    }

    /// The calibration points backing this curve.
    pub fn points(&self) -> impl Iterator<Item = (Bytes, Rate)> + '_ {
        self.points
            .iter()
            .map(|&(rs, bw)| (Bytes::new(rs as u64), Rate::bytes_per_sec(bw)))
    }

    /// Returns a copy of this curve with every bandwidth scaled by `factor`
    /// and optionally capped at `cap`. This is how cloud virtual disks are
    /// derived: per-GB throughput scaling with a per-instance ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64, cap: Option<Rate>) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let cap_bps = cap.map(|c| c.as_bytes_per_sec()).unwrap_or(f64::INFINITY);
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|&(rs, bw)| (rs, (bw * factor).min(cap_bps)))
            .collect();
        // Capping can create equal adjacent bandwidths, which is fine, but
        // also keep sizes strictly increasing (they already are).
        pts.dedup_by(|a, b| a.0 == b.0);
        BandwidthCurve { points: pts }
    }
}

impl fmt::Display for BandwidthCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BandwidthCurve[")?;
        for (i, (rs, bw)) in self.points().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rs}@{bw}")?;
        }
        write!(f, "]")
    }
}

impl doppio_engine::Fingerprintable for BandwidthCurve {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_u64(self.points.len() as u64);
        for &(rs, bw) in &self.points {
            fp.write_f64(rs);
            fp.write_f64(bw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(points: &[(u64, f64)]) -> BandwidthCurve {
        let pts: Vec<_> = points
            .iter()
            .map(|&(kib, mibps)| (Bytes::from_kib(kib), Rate::mib_per_sec(mibps)))
            .collect();
        BandwidthCurve::from_points(&pts)
    }

    #[test]
    fn exact_at_calibration_points() {
        let c = mk(&[(4, 2.0), (30, 15.0), (131072, 138.0)]);
        assert!((c.bandwidth(Bytes::from_kib(30)).as_mib_per_sec() - 15.0).abs() < 1e-9);
        assert!((c.bandwidth(Bytes::from_kib(4)).as_mib_per_sec() - 2.0).abs() < 1e-9);
        assert!((c.peak().as_mib_per_sec() - 138.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_is_monotone_and_bracketed() {
        let c = mk(&[(4, 2.0), (30, 15.0), (1024, 90.0)]);
        let mid = c.bandwidth(Bytes::from_kib(100)).as_mib_per_sec();
        assert!(mid > 15.0 && mid < 90.0);
        let mut prev = 0.0;
        for kib in [1u64, 2, 4, 8, 16, 30, 64, 100, 512, 1024, 4096] {
            let bw = c.bandwidth(Bytes::from_kib(kib)).as_mib_per_sec();
            assert!(bw >= prev, "bandwidth must be monotone in request size");
            prev = bw;
        }
    }

    #[test]
    fn below_first_point_iops_is_constant() {
        let c = mk(&[(4, 2.0), (30, 15.0)]);
        let iops4k = c.iops(Bytes::from_kib(4));
        let iops1k = c.iops(Bytes::from_kib(1));
        assert!((iops4k - iops1k).abs() / iops4k < 1e-9);
        // bandwidth halves with request size in the latency-dominated regime
        let bw2k = c.bandwidth(Bytes::from_kib(2)).as_mib_per_sec();
        assert!((bw2k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn above_last_point_clamps_to_peak() {
        let c = mk(&[(4, 2.0), (131072, 138.0)]);
        assert_eq!(c.bandwidth(Bytes::from_mib(365)), c.peak());
    }

    #[test]
    fn latency_model_matches_closed_form() {
        let c = BandwidthCurve::from_latency_model(Rate::mib_per_sec(100.0), 0.001);
        let rs = Bytes::from_kib(64);
        let expect = rs.as_f64() / (0.001 + rs.as_f64() / (100.0 * 1024.0 * 1024.0));
        let got = c.bandwidth(rs).as_bytes_per_sec();
        assert!(
            (got - expect).abs() / expect < 0.02,
            "within interpolation error"
        );
    }

    #[test]
    fn flat_curve_ignores_request_size() {
        let c = BandwidthCurve::flat(Rate::gib_per_sec(8.0));
        assert_eq!(
            c.bandwidth(Bytes::from_kib(1)),
            c.bandwidth(Bytes::from_gib(1))
        );
    }

    #[test]
    fn scaled_applies_factor_and_cap() {
        let c = mk(&[(4, 10.0), (1024, 100.0)]);
        let s = c.scaled(2.0, Some(Rate::mib_per_sec(150.0)));
        assert!((s.bandwidth(Bytes::from_kib(4)).as_mib_per_sec() - 20.0).abs() < 1e-9);
        assert!((s.peak().as_mib_per_sec() - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        mk(&[(30, 15.0), (4, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_bandwidth() {
        mk(&[(4, 20.0), (30, 15.0)]);
    }

    #[test]
    fn iops_times_rs_equals_bandwidth() {
        let c = mk(&[(4, 2.0), (30, 15.0), (1024, 90.0)]);
        for kib in [4u64, 10, 30, 200, 1024] {
            let rs = Bytes::from_kib(kib);
            let recomposed = c.iops(rs) * rs.as_f64();
            assert!((recomposed - c.bandwidth(rs).as_bytes_per_sec()).abs() < 1e-6);
        }
    }
}
