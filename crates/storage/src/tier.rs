//! Storage tiers: a runtime device plus its place in the storage hierarchy.

use std::fmt;

use doppio_events::{Bytes, FlowId, SimTime};

use crate::{Device, DeviceSpec, IoDir, TransferSpec};

/// Where a tier sits in the storage hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierScope {
    /// One instance per node (the paper's HDD/SSD model): contention is
    /// between the streams of a single node.
    NodeLocal,
    /// One instance per cluster (object store, parallel FS): every node's
    /// streams contend in the same rate domain.
    ClusterShared,
}

impl fmt::Display for TierScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierScope::NodeLocal => write!(f, "node-local"),
            TierScope::ClusterShared => write!(f, "cluster-shared"),
        }
    }
}

/// A storage tier: a [`Device`] tagged with its contention scope.
///
/// The runtime behaviour is exactly the wrapped device's — processor
/// sharing over device time, replay, harvest horizons — so a shared remote
/// store obeys the same bit-identity discipline as a node's disk. The tier
/// only adds the *scope*, which decides who shares the rate domain: a
/// `NodeLocal` tier is instantiated once per node, a `ClusterShared` tier
/// once per cluster.
#[derive(Debug)]
pub struct StorageTier {
    scope: TierScope,
    device: Device,
}

impl StorageTier {
    /// A per-node tier (local HDD/SSD).
    pub fn node_local(spec: DeviceSpec) -> Self {
        StorageTier {
            scope: TierScope::NodeLocal,
            device: Device::new(spec),
        }
    }

    /// A cluster-wide shared tier (object store, parallel filesystem).
    pub fn cluster_shared(spec: DeviceSpec) -> Self {
        StorageTier {
            scope: TierScope::ClusterShared,
            device: Device::new(spec),
        }
    }

    /// This tier's contention scope.
    pub fn scope(&self) -> TierScope {
        self.scope
    }

    /// The tier's static device spec.
    pub fn spec(&self) -> &DeviceSpec {
        self.device.spec()
    }

    /// The wrapped runtime device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the wrapped runtime device.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Effective bandwidth for a direction and request size.
    pub fn bandwidth(&self, dir: IoDir, request_size: Bytes) -> doppio_events::Rate {
        self.device.spec().bandwidth(dir, request_size)
    }

    /// Submits a transfer (see [`Device::submit`]).
    pub fn submit(&mut self, now: SimTime, t: TransferSpec) -> FlowId {
        self.device.submit(now, t)
    }

    /// Cancels an in-flight transfer (see [`Device::cancel`]).
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.device.cancel(now, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use doppio_events::Rate;

    #[test]
    fn tier_forwards_to_wrapped_device() {
        let mut tier = StorageTier::cluster_shared(presets::ssd_mz7lm());
        assert_eq!(tier.scope(), TierScope::ClusterShared);
        assert_eq!(tier.spec().name(), presets::ssd_mz7lm().name());
        let id = tier.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(30),
                request_size: Bytes::from_kib(30),
                stream_cap: Some(Rate::mib_per_sec(60.0)),
                tag: 7,
            },
        );
        assert_eq!(tier.device().active_transfers(), 1);
        assert!(tier.cancel(SimTime::ZERO, id));
        assert_eq!(tier.device().active_transfers(), 0);
    }

    #[test]
    fn scopes_display_distinctly() {
        assert_ne!(
            StorageTier::node_local(presets::hdd_wd4000())
                .scope()
                .to_string(),
            StorageTier::cluster_shared(presets::hdd_wd4000())
                .scope()
                .to_string()
        );
    }
}
