//! iostat-style per-device request accounting.

use std::fmt;

use doppio_events::Bytes;

use crate::IoDir;

/// Bytes in one disk sector, the unit `iostat` reports request sizes in.
/// The paper (Section III-C2) observes "the average request size is 60
/// [sectors], which corresponds to the 30 KB (≈ 512 B × 60) block size".
pub const SECTOR: u64 = 512;

/// Accumulated I/O request statistics for one device, mirroring the fields
/// of `iostat -x` that the Doppio calibration procedure consumes
/// (Section VI.1: "iostat is used to log the average I/O request sizes
/// `RS_read`, `RS_write` to look up the effective bandwidths").
///
/// # Example
///
/// ```
/// use doppio_events::Bytes;
/// use doppio_storage::{IoDir, IoStat};
///
/// let mut s = IoStat::default();
/// s.record(IoDir::Read, Bytes::from_kib(60), Bytes::from_kib(30));
/// assert_eq!(s.avg_request_size(IoDir::Read), Some(Bytes::from_kib(30)));
/// assert_eq!(s.avg_request_sectors(IoDir::Read), Some(60.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStat {
    read_bytes: Bytes,
    write_bytes: Bytes,
    read_requests: u64,
    write_requests: u64,
}

impl IoStat {
    /// Records a transfer of `bytes` issued as `request_size`-sized requests.
    ///
    /// The request count is the ceiling of `bytes / request_size`, matching
    /// how a block layer would split the stream.
    pub fn record(&mut self, dir: IoDir, bytes: Bytes, request_size: Bytes) {
        if bytes.is_zero() {
            return;
        }
        let requests = bytes.div_ceil_by(request_size.max(Bytes::new(1)));
        match dir {
            IoDir::Read => {
                self.read_bytes += bytes;
                self.read_requests += requests;
            }
            IoDir::Write => {
                self.write_bytes += bytes;
                self.write_requests += requests;
            }
        }
    }

    /// Total bytes moved in a direction.
    pub fn bytes(&self, dir: IoDir) -> Bytes {
        match dir {
            IoDir::Read => self.read_bytes,
            IoDir::Write => self.write_bytes,
        }
    }

    /// Total requests issued in a direction.
    pub fn requests(&self, dir: IoDir) -> u64 {
        match dir {
            IoDir::Read => self.read_requests,
            IoDir::Write => self.write_requests,
        }
    }

    /// Average request size in a direction; `None` if no requests occurred.
    pub fn avg_request_size(&self, dir: IoDir) -> Option<Bytes> {
        let reqs = self.requests(dir);
        if reqs == 0 {
            return None;
        }
        Some(Bytes::new(self.bytes(dir).as_u64() / reqs))
    }

    /// Average request size in 512-byte sectors (the `avgrq-sz` column of
    /// `iostat -x`); `None` if no requests occurred.
    pub fn avg_request_sectors(&self, dir: IoDir) -> Option<f64> {
        self.avg_request_size(dir)
            .map(|b| b.as_f64() / SECTOR as f64)
    }

    /// Merges another accumulator into this one (e.g. summing per-node
    /// devices into a cluster view).
    pub fn merge(&mut self, other: &IoStat) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.read_requests += other.read_requests;
        self.write_requests += other.write_requests;
    }
}

impl fmt::Display for IoStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} in {} reqs, write {} in {} reqs",
            self.read_bytes, self.read_requests, self.write_bytes, self.write_requests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sector_arithmetic() {
        // 512 B * 60 sectors = 30 KiB, the GATK4 shuffle read request size.
        let mut s = IoStat::default();
        s.record(IoDir::Read, Bytes::from_mib(27), Bytes::from_kib(30));
        let sectors = s.avg_request_sectors(IoDir::Read).unwrap();
        assert!((sectors - 60.0).abs() < 0.5);
    }

    #[test]
    fn request_count_is_ceiling() {
        let mut s = IoStat::default();
        s.record(IoDir::Write, Bytes::from_kib(100), Bytes::from_kib(30));
        assert_eq!(s.requests(IoDir::Write), 4);
    }

    #[test]
    fn directions_are_independent() {
        let mut s = IoStat::default();
        s.record(IoDir::Read, Bytes::from_mib(1), Bytes::from_kib(128));
        s.record(IoDir::Write, Bytes::from_mib(2), Bytes::from_mib(1));
        assert_eq!(s.bytes(IoDir::Read), Bytes::from_mib(1));
        assert_eq!(s.bytes(IoDir::Write), Bytes::from_mib(2));
        assert_eq!(s.avg_request_size(IoDir::Write), Some(Bytes::from_mib(1)));
    }

    #[test]
    fn empty_stat_has_no_avg() {
        let s = IoStat::default();
        assert_eq!(s.avg_request_size(IoDir::Read), None);
        assert_eq!(s.avg_request_sectors(IoDir::Write), None);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = IoStat::default();
        a.record(IoDir::Read, Bytes::from_mib(10), Bytes::from_mib(1));
        let mut b = IoStat::default();
        b.record(IoDir::Read, Bytes::from_mib(20), Bytes::from_mib(1));
        a.merge(&b);
        assert_eq!(a.bytes(IoDir::Read), Bytes::from_mib(30));
        assert_eq!(a.requests(IoDir::Read), 30);
    }

    #[test]
    fn zero_byte_record_is_a_noop() {
        let mut s = IoStat::default();
        s.record(IoDir::Read, Bytes::ZERO, Bytes::from_kib(4));
        assert_eq!(s.requests(IoDir::Read), 0);
    }
}
