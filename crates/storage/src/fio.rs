//! A fio-like microbenchmark driver.
//!
//! The paper uses `fio` to measure IOPS and effective bandwidth across read
//! block sizes for HDD and SSD (Figure 5, Section III-C1). This module
//! reproduces that experiment against our device models, in two ways:
//!
//! * [`run_analytic`] reads the device's bandwidth curve directly (what a
//!   lookup-table user sees), and
//! * [`run_simulated`] actually drives a [`Device`] with concurrent request
//!   streams through the processor-sharing server.
//!
//! The two must agree — a cross-validation of the runtime device model
//! against its own spec (tested below and in the Figure 5 bench).

use doppio_events::{Bytes, Rate, SimTime};

use crate::{Device, DeviceSpec, IoDir, TransferSpec};

/// A fio-style job description.
#[derive(Debug, Clone)]
pub struct FioJob {
    /// Device under test.
    pub device: DeviceSpec,
    /// Transfer direction.
    pub dir: IoDir,
    /// Block sizes to sweep.
    pub block_sizes: Vec<Bytes>,
    /// Number of concurrent streams (fio `numjobs`).
    pub numjobs: usize,
    /// Bytes transferred per stream at each block size.
    pub bytes_per_job: Bytes,
}

impl FioJob {
    /// A read sweep over the paper's Figure 5 block-size range
    /// (4 KB … 128 MB) with one job moving 256 MiB per point.
    pub fn read_sweep(device: DeviceSpec) -> Self {
        FioJob {
            device,
            dir: IoDir::Read,
            block_sizes: default_block_sizes(),
            numjobs: 1,
            bytes_per_job: Bytes::from_mib(256),
        }
    }
}

/// The block sizes of Figure 5: 4 KB to 128 MB in powers of four, plus the
/// 30 KB point the paper calls out for shuffle read.
pub fn default_block_sizes() -> Vec<Bytes> {
    let mut v = vec![
        Bytes::from_kib(4),
        Bytes::from_kib(16),
        Bytes::from_kib(30),
        Bytes::from_kib(64),
        Bytes::from_kib(256),
        Bytes::from_mib(1),
        Bytes::from_mib(4),
        Bytes::from_mib(16),
        Bytes::from_mib(64),
        Bytes::from_mib(128),
    ];
    v.sort();
    v
}

/// One row of fio output: block size, aggregate IOPS, aggregate bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioRow {
    /// Request block size.
    pub block_size: Bytes,
    /// Aggregate I/O operations per second across all jobs.
    pub iops: f64,
    /// Aggregate effective bandwidth across all jobs.
    pub bandwidth: Rate,
}

/// Evaluates the job against the device's bandwidth curve analytically.
///
/// With `numjobs >= 1` uncapped identical streams, the device saturates, so
/// the aggregate equals the curve value at that block size.
pub fn run_analytic(job: &FioJob) -> Vec<FioRow> {
    job.block_sizes
        .iter()
        .map(|&bs| {
            let bw = job.device.bandwidth(job.dir, bs);
            FioRow {
                block_size: bs,
                iops: bw.as_bytes_per_sec() / bs.as_f64(),
                bandwidth: bw,
            }
        })
        .collect()
}

/// Runs the job through the discrete-event device model: `numjobs` streams
/// each transferring `bytes_per_job`, aggregate bandwidth measured as total
/// bytes over makespan.
pub fn run_simulated(job: &FioJob) -> Vec<FioRow> {
    assert!(job.numjobs >= 1, "fio needs at least one job");
    job.block_sizes
        .iter()
        .map(|&bs| {
            let mut dev = Device::new(job.device.clone());
            for tag in 0..job.numjobs as u64 {
                dev.submit(
                    SimTime::ZERO,
                    TransferSpec {
                        dir: job.dir,
                        bytes: job.bytes_per_job,
                        request_size: bs,
                        stream_cap: None,
                        tag,
                    },
                );
            }
            let mut makespan = SimTime::ZERO;
            while let Some(t) = dev.next_completion() {
                dev.advance(t);
                dev.take_completed();
                makespan = t;
            }
            let total = job.bytes_per_job.as_f64() * job.numjobs as f64;
            let bw = Rate::bytes_per_sec(total / makespan.as_secs());
            FioRow {
                block_size: bs,
                iops: bw.as_bytes_per_sec() / bs.as_f64(),
                bandwidth: bw,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn analytic_matches_simulated_single_job() {
        let job = FioJob::read_sweep(presets::hdd_wd4000());
        let a = run_analytic(&job);
        let s = run_simulated(&job);
        for (ra, rs) in a.iter().zip(&s) {
            assert_eq!(ra.block_size, rs.block_size);
            let rel = (ra.bandwidth.as_bytes_per_sec() - rs.bandwidth.as_bytes_per_sec()).abs()
                / ra.bandwidth.as_bytes_per_sec();
            assert!(
                rel < 1e-6,
                "bs {}: analytic {} vs sim {}",
                ra.block_size,
                ra.bandwidth,
                rs.bandwidth
            );
        }
    }

    #[test]
    fn concurrency_does_not_change_aggregate_bandwidth() {
        // Uncapped streams saturate the device at any numjobs — aggregate
        // bandwidth equals the curve value (fio behaves the same way once
        // the device is the bottleneck).
        let mut job = FioJob::read_sweep(presets::ssd_mz7lm());
        job.block_sizes = vec![Bytes::from_kib(30)];
        job.numjobs = 4;
        job.bytes_per_job = Bytes::from_mib(64);
        let s = run_simulated(&job);
        let expect = presets::ssd_mz7lm().bandwidth(IoDir::Read, Bytes::from_kib(30));
        let rel = (s[0].bandwidth.as_bytes_per_sec() - expect.as_bytes_per_sec()).abs()
            / expect.as_bytes_per_sec();
        assert!(rel < 1e-6);
    }

    #[test]
    fn iops_declines_and_bandwidth_grows_with_block_size() {
        let rows = run_analytic(&FioJob::read_sweep(presets::hdd_wd4000()));
        for w in rows.windows(2) {
            assert!(w[0].iops >= w[1].iops, "IOPS non-increasing in block size");
            assert!(
                w[0].bandwidth.as_bytes_per_sec() <= w[1].bandwidth.as_bytes_per_sec(),
                "bandwidth non-decreasing in block size"
            );
        }
    }

    #[test]
    fn paper_figure5_headline_points() {
        let hdd = run_analytic(&FioJob::read_sweep(presets::hdd_wd4000()));
        let ssd = run_analytic(&FioJob::read_sweep(presets::ssd_mz7lm()));
        let at = |rows: &[FioRow], bs: Bytes| {
            rows.iter()
                .find(|r| r.block_size == bs)
                .unwrap()
                .bandwidth
                .as_mib_per_sec()
        };
        let bs30 = Bytes::from_kib(30);
        assert!((at(&hdd, bs30) - 15.0).abs() < 0.1);
        assert!((at(&ssd, bs30) - 480.0).abs() < 1.0);
    }
}
