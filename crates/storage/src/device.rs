//! Device specifications and runtime device state.

use std::fmt;

use doppio_events::{Bytes, FlowId, FlowSpec, PsServer, Rate, SimTime};

use crate::{BandwidthCurve, IoStat};

/// Direction of an I/O transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoDir {
    /// Data read from the device.
    Read,
    /// Data written to the device.
    Write,
}

impl fmt::Display for IoDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoDir::Read => write!(f, "read"),
            IoDir::Write => write!(f, "write"),
        }
    }
}

/// Static description of a storage device: a name plus read and write
/// effective-bandwidth curves.
///
/// Specs are pure data and cheap to clone; a runtime [`Device`] is built
/// from a spec per simulated node.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    name: String,
    read: BandwidthCurve,
    write: BandwidthCurve,
    capacity: Option<Bytes>,
}

impl DeviceSpec {
    /// Creates a device spec from read/write curves.
    pub fn new(name: impl Into<String>, read: BandwidthCurve, write: BandwidthCurve) -> Self {
        DeviceSpec {
            name: name.into(),
            read,
            write,
            capacity: None,
        }
    }

    /// Sets the device capacity (used by the cloud sizing study; `None`
    /// means "large enough", which is what the on-prem experiments assume).
    pub fn with_capacity(mut self, capacity: Bytes) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Device name (e.g. `"WD4000FYYZ"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The read bandwidth curve.
    pub fn read_curve(&self) -> &BandwidthCurve {
        &self.read
    }

    /// The write bandwidth curve.
    pub fn write_curve(&self) -> &BandwidthCurve {
        &self.write
    }

    /// Curve for a given direction.
    pub fn curve(&self, dir: IoDir) -> &BandwidthCurve {
        match dir {
            IoDir::Read => &self.read,
            IoDir::Write => &self.write,
        }
    }

    /// Effective bandwidth for a direction and request size.
    pub fn bandwidth(&self, dir: IoDir, request_size: Bytes) -> Rate {
        self.curve(dir).bandwidth(request_size)
    }

    /// Configured capacity, if any.
    pub fn capacity(&self) -> Option<Bytes> {
        self.capacity
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (read peak {}, write peak {})",
            self.name,
            self.read.peak(),
            self.write.peak()
        )
    }
}

/// Parameters of an I/O transfer submitted to a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSpec {
    /// Transfer direction.
    pub dir: IoDir,
    /// Total bytes to move.
    pub bytes: Bytes,
    /// Request size the stream issues (determines effective bandwidth).
    pub request_size: Bytes,
    /// Per-stream throughput cap — the paper's `T`, the rate one CPU core
    /// can drive this kind of I/O with no device contention. `None` means
    /// the stream can use the device's full effective bandwidth.
    pub stream_cap: Option<Rate>,
    /// Opaque owner tag returned on completion.
    pub tag: u64,
}

/// A runtime storage device: a processor-sharing server over *device time*.
///
/// A stream transferring at request size `rs` needs `1 / BW(rs)` device-
/// seconds per byte, so mixed-request-size workloads compose harmonically —
/// exactly how a real disk's time is consumed. The server capacity is 1.0
/// device-second per second.
///
/// Contention behaviour therefore matches Section IV of the paper: `k`
/// identical streams each capped at byte-rate `T` saturate the device when
/// `k >= b = BW(rs) / T`, after which aggregate throughput stays at
/// `BW(rs)`.
///
/// # Example
///
/// ```
/// use doppio_events::{Bytes, Rate, SimTime};
/// use doppio_storage::{presets, Device, IoDir, TransferSpec};
///
/// let mut ssd = Device::new(presets::ssd_mz7lm());
/// ssd.submit(SimTime::ZERO, TransferSpec {
///     dir: IoDir::Read,
///     bytes: Bytes::from_mib(480),
///     request_size: Bytes::from_kib(30),
///     stream_cap: Some(Rate::mib_per_sec(60.0)), // paper's T for shuffle read
///     tag: 0,
/// });
/// // One capped stream: 480 MiB at 60 MiB/s = 8 s.
/// let done = ssd.next_completion().unwrap();
/// assert!((done.as_secs() - 8.0).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    server: PsServer,
    stats: IoStat,
    speed_scale: f64,
}

impl Device {
    /// Creates an idle device from a spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            spec,
            server: PsServer::new(1.0),
            stats: IoStat::default(),
            speed_scale: 1.0,
        }
    }

    /// The device's static spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// iostat-style counters accumulated so far.
    pub fn stats(&self) -> &IoStat {
        &self.stats
    }

    /// Resets the iostat counters (e.g. between stages, like clearing
    /// `iostat` deltas between profiling windows).
    pub fn reset_stats(&mut self) {
        self.stats = IoStat::default();
    }

    /// Submits a transfer at time `now`; returns the flow id.
    ///
    /// Zero-byte transfers complete immediately.
    ///
    /// # Panics
    ///
    /// Panics if `request_size` is zero while `bytes` is non-zero.
    pub fn submit(&mut self, now: SimTime, t: TransferSpec) -> FlowId {
        if !t.bytes.is_zero() {
            assert!(t.request_size.as_u64() > 0, "request size must be positive");
        }
        let rs = t.request_size.min(t.bytes.max(Bytes::new(1)));
        let bw = self.spec.bandwidth(t.dir, rs).as_bytes_per_sec() * self.speed_scale;
        // Service demand in device-seconds.
        let demand = t.bytes.as_f64() / bw;
        // Per-flow cap in device-time rate: a byte-rate cap of T corresponds
        // to T / BW(rs) device-seconds per second, and no flow can use more
        // than the whole device.
        let cap = match t.stream_cap {
            Some(cap_rate) => (cap_rate.as_bytes_per_sec() / bw).min(1.0),
            None => 1.0,
        };
        self.stats.record(t.dir, t.bytes, rs);
        self.server.add_flow(
            now,
            FlowSpec {
                demand,
                cap,
                tag: t.tag,
            },
        )
    }

    /// Integrates progress up to `now` (see [`PsServer::advance`]).
    #[inline]
    pub fn advance(&mut self, now: SimTime) {
        self.server.advance(now);
    }

    /// Applies a deferred sequence of advance timestamps, bit-identical to
    /// having called [`Device::advance`] at each (see [`PsServer::replay`]).
    #[inline]
    pub fn replay(&mut self, times: &[SimTime]) {
        self.server.replay(times);
    }

    /// Time of the next transfer completion, if any. Cached between calls
    /// on an unchanged device (see [`PsServer::next_completion`]).
    #[inline]
    pub fn next_completion(&mut self) -> Option<SimTime> {
        self.server.next_completion()
    }

    /// Cheap next-completion estimate that never forces deferred
    /// integration — exact when synced, else a conservative lower bound
    /// (see [`PsServer::next_completion_lb`]).
    #[inline]
    pub fn next_completion_lb(&mut self) -> Option<(SimTime, bool)> {
        self.server.next_completion_lb()
    }

    /// Drains completed transfers as `(flow id, tag)` pairs.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        self.server.take_completed()
    }

    /// Absolute time (seconds) strictly below which an advance cannot
    /// complete any transfer (see [`PsServer::harvest_horizon`]).
    #[inline]
    pub fn harvest_horizon(&self) -> f64 {
        self.server.harvest_horizon()
    }

    /// Appends the tags of completed transfers to `out` without allocating
    /// (the hot-path variant of [`Device::take_completed`]).
    #[inline]
    pub fn drain_completed_tags(&mut self, out: &mut Vec<u64>) {
        self.server.drain_completed_tags(out);
    }

    /// Number of in-flight transfers.
    pub fn active_transfers(&self) -> usize {
        self.server.active_flows()
    }

    /// High-water mark of concurrent transfers since the last
    /// [`Device::reset_peak`].
    pub fn peak_transfers(&self) -> usize {
        self.server.peak_active_flows()
    }

    /// Restarts the concurrent-transfer high-water mark (between stages).
    pub fn reset_peak(&mut self) {
        self.server.reset_peak();
    }

    /// Instantaneous byte rate of a specific flow.
    pub fn flow_byte_rate(&self, id: FlowId, dir: IoDir, request_size: Bytes) -> Option<Rate> {
        let device_time_rate = self.server.flow_rate(id)?;
        let bw = self.spec.bandwidth(dir, request_size);
        Some(Rate::bytes_per_sec(
            device_time_rate * bw.as_bytes_per_sec(),
        ))
    }

    /// Cancels an in-flight transfer.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.server.remove_flow(now, id).is_some()
    }

    /// Multiplies the device's effective bandwidth by `factor` — the
    /// degraded-disk window of a fault plan. Scales compose
    /// multiplicatively, so a window ends by applying `1.0 / factor`.
    /// Only transfers submitted while a scale is in force are affected;
    /// in-flight transfers keep their original service demand.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale_speed(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed scale factor must be finite and positive, got {factor}"
        );
        self.speed_scale *= factor;
    }

    /// The current bandwidth multiplier (1.0 = healthy).
    pub fn speed_scale(&self) -> f64 {
        self.speed_scale
    }

    /// Fraction of elapsed time the device was busy (like iostat `%util`).
    pub fn utilization(&self, elapsed: doppio_events::SimDuration) -> f64 {
        if elapsed.as_secs() == 0.0 {
            0.0
        } else {
            (self.server.busy_time().as_secs() / elapsed.as_secs()).min(1.0)
        }
    }
}

impl doppio_engine::Fingerprintable for DeviceSpec {
    fn fingerprint_into(&self, fp: &mut doppio_engine::FingerprintBuilder) {
        fp.write_str(&self.name);
        self.read.fingerprint_into(fp);
        self.write.fingerprint_into(fp);
        self.capacity.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn drive_to_completion(dev: &mut Device) -> SimTime {
        let mut last = SimTime::ZERO;
        while let Some(t) = dev.next_completion() {
            dev.advance(t);
            dev.take_completed();
            last = t;
        }
        last
    }

    #[test]
    fn single_uncapped_stream_runs_at_effective_bandwidth() {
        let mut hdd = Device::new(presets::hdd_wd4000());
        let rs = Bytes::from_kib(30);
        let bw = hdd.spec().bandwidth(IoDir::Read, rs);
        hdd.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(150),
                request_size: rs,
                stream_cap: None,
                tag: 0,
            },
        );
        let done = drive_to_completion(&mut hdd);
        let expect = Bytes::from_mib(150).as_f64() / bw.as_bytes_per_sec();
        assert!((done.as_secs() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn speed_scale_stretches_new_transfers_and_windows_compose() {
        let rs = Bytes::from_kib(30);
        let spec = TransferSpec {
            dir: IoDir::Read,
            bytes: Bytes::from_mib(150),
            request_size: rs,
            stream_cap: None,
            tag: 0,
        };
        let mut healthy = Device::new(presets::hdd_wd4000());
        healthy.submit(SimTime::ZERO, spec);
        let baseline = drive_to_completion(&mut healthy).as_secs();

        let mut degraded = Device::new(presets::hdd_wd4000());
        degraded.scale_speed(0.25);
        assert!((degraded.speed_scale() - 0.25).abs() < 1e-12);
        degraded.submit(SimTime::ZERO, spec);
        let slow = drive_to_completion(&mut degraded).as_secs();
        assert!((slow - 4.0 * baseline).abs() / baseline < 1e-9);

        // Closing the window with the reciprocal restores full speed for
        // transfers submitted afterwards.
        degraded.scale_speed(1.0 / 0.25);
        assert!((degraded.speed_scale() - 1.0).abs() < 1e-9);
        let t0 = SimTime::ZERO + doppio_events::SimDuration::from_secs(slow);
        degraded.submit(t0, spec);
        let recovered = drive_to_completion(&mut degraded).as_secs() - slow;
        assert!((recovered - baseline).abs() / baseline < 1e-9);
    }

    #[test]
    fn zero_length_degradation_window_is_a_no_op() {
        // A fault window that opens and closes at the same instant (scale
        // then immediate reciprocal, no submissions in between) must leave
        // transfer timing bit-identical to a device that never degraded.
        let spec = TransferSpec {
            dir: IoDir::Read,
            bytes: Bytes::from_mib(150),
            request_size: Bytes::from_kib(30),
            stream_cap: None,
            tag: 0,
        };
        let mut healthy = Device::new(presets::hdd_wd4000());
        healthy.submit(SimTime::ZERO, spec);
        let baseline = drive_to_completion(&mut healthy).as_secs();

        let mut windowed = Device::new(presets::hdd_wd4000());
        windowed.scale_speed(0.25);
        windowed.scale_speed(1.0 / 0.25); // window closes before any I/O
        assert_eq!(windowed.speed_scale(), 1.0, "0.25 * 4.0 is exact in f64");
        windowed.submit(SimTime::ZERO, spec);
        let after = drive_to_completion(&mut windowed).as_secs();
        assert_eq!(after.to_bits(), baseline.to_bits());
    }

    #[test]
    fn overlapping_degradation_windows_compose_multiplicatively() {
        // Two overlapping windows (0.5 then 0.5) stack to 0.25; closing the
        // first mid-overlap leaves the second's 0.5 in force.
        let spec = TransferSpec {
            dir: IoDir::Read,
            bytes: Bytes::from_mib(150),
            request_size: Bytes::from_kib(30),
            stream_cap: None,
            tag: 0,
        };
        let mut healthy = Device::new(presets::hdd_wd4000());
        healthy.submit(SimTime::ZERO, spec);
        let baseline = drive_to_completion(&mut healthy).as_secs();

        let mut d = Device::new(presets::hdd_wd4000());
        d.scale_speed(0.5); // window A opens
        d.scale_speed(0.5); // window B opens (overlap)
        assert_eq!(d.speed_scale(), 0.25);
        d.submit(SimTime::ZERO, spec);
        let both = drive_to_completion(&mut d).as_secs();
        assert!((both - 4.0 * baseline).abs() / baseline < 1e-9);

        d.scale_speed(1.0 / 0.5); // window A closes, B still open
        assert_eq!(d.speed_scale(), 0.5);
        let t0 = SimTime::ZERO + doppio_events::SimDuration::from_secs(both);
        d.submit(t0, spec);
        let second = drive_to_completion(&mut d).as_secs() - both;
        assert!((second - 2.0 * baseline).abs() / baseline < 1e-9);
    }

    #[test]
    fn concurrent_streams_saturate_at_device_bandwidth() {
        // 8 uncapped streams reading at 30 KB on an HDD finish in the same
        // total time as the aggregate bytes at BW(30 KB): the device is the
        // bottleneck, matching the paper's "b = 1 for HDD shuffle read".
        let mut hdd = Device::new(presets::hdd_wd4000());
        let rs = Bytes::from_kib(30);
        let per_stream = Bytes::from_mib(30);
        for tag in 0..8 {
            hdd.submit(
                SimTime::ZERO,
                TransferSpec {
                    dir: IoDir::Read,
                    bytes: per_stream,
                    request_size: rs,
                    stream_cap: Some(Rate::mib_per_sec(60.0)),
                    tag,
                },
            );
        }
        let done = drive_to_completion(&mut hdd);
        let bw = hdd.spec().bandwidth(IoDir::Read, rs).as_bytes_per_sec();
        let expect = 8.0 * per_stream.as_f64() / bw;
        assert!(
            (done.as_secs() - expect).abs() / expect < 1e-6,
            "makespan {} vs expected {}",
            done.as_secs(),
            expect
        );
    }

    #[test]
    fn break_point_on_ssd_matches_paper() {
        // Paper Section V-A2: SSD shuffle read BW = 480 MB/s, per-core
        // T = 60 MB/s => b = 8. With 4 streams nothing contends.
        let mut ssd = Device::new(presets::ssd_mz7lm());
        let rs = Bytes::from_kib(30);
        let t = Rate::mib_per_sec(60.0);
        let per_stream = Bytes::from_mib(60);
        for tag in 0..4 {
            ssd.submit(
                SimTime::ZERO,
                TransferSpec {
                    dir: IoDir::Read,
                    bytes: per_stream,
                    request_size: rs,
                    stream_cap: Some(t),
                    tag,
                },
            );
        }
        let done = drive_to_completion(&mut ssd);
        assert!(
            (done.as_secs() - 1.0).abs() < 1e-6,
            "each stream runs at its cap"
        );
    }

    #[test]
    fn mixed_request_sizes_compose_harmonically() {
        // A small-request flow consumes far more device time per byte, so a
        // concurrent large-request flow slows down accordingly.
        let mut hdd = Device::new(presets::hdd_wd4000());
        let small = hdd.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(15),
                request_size: Bytes::from_kib(30),
                stream_cap: None,
                tag: 1,
            },
        );
        let big = hdd.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(138),
                request_size: Bytes::from_mib(128),
                stream_cap: None,
                tag: 2,
            },
        );
        // Each gets half the device time; byte rates differ by curve.
        let r_small = hdd
            .flow_byte_rate(small, IoDir::Read, Bytes::from_kib(30))
            .unwrap();
        let r_big = hdd
            .flow_byte_rate(big, IoDir::Read, Bytes::from_mib(128))
            .unwrap();
        let bw_small = hdd.spec().bandwidth(IoDir::Read, Bytes::from_kib(30));
        let bw_big = hdd.spec().bandwidth(IoDir::Read, Bytes::from_mib(128));
        assert!((r_small.as_bytes_per_sec() - bw_small.as_bytes_per_sec() / 2.0).abs() < 1.0);
        assert!((r_big.as_bytes_per_sec() - bw_big.as_bytes_per_sec() / 2.0).abs() < 1.0);
    }

    #[test]
    fn write_uses_write_curve() {
        let spec = presets::hdd_wd4000();
        let r = spec.bandwidth(IoDir::Read, Bytes::from_mib(128));
        let w = spec.bandwidth(IoDir::Write, Bytes::from_mib(128));
        assert!(w < r, "HDD writes slower than reads at large requests");
    }

    #[test]
    fn stats_record_requests_and_bytes() {
        let mut d = Device::new(presets::ssd_mz7lm());
        d.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(30),
                request_size: Bytes::from_kib(30),
                stream_cap: None,
                tag: 0,
            },
        );
        let s = d.stats();
        assert_eq!(s.bytes(IoDir::Read), Bytes::from_mib(30));
        assert_eq!(s.requests(IoDir::Read), 1024);
        assert_eq!(s.avg_request_size(IoDir::Read), Some(Bytes::from_kib(30)));
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut d = Device::new(presets::ssd_mz7lm());
        d.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Write,
                bytes: Bytes::ZERO,
                request_size: Bytes::from_kib(4),
                stream_cap: None,
                tag: 9,
            },
        );
        d.advance(SimTime::ZERO);
        assert_eq!(d.take_completed().len(), 1);
    }

    #[test]
    fn request_size_clamped_to_transfer_size() {
        // A 1 MiB transfer issued with a 128 MiB "request size" really uses
        // 1 MiB requests; it must not borrow the large-request bandwidth.
        let mut d = Device::new(presets::hdd_wd4000());
        d.submit(
            SimTime::ZERO,
            TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(1),
                request_size: Bytes::from_mib(128),
                stream_cap: None,
                tag: 0,
            },
        );
        let done = drive_to_completion(&mut d);
        let bw_1m = d
            .spec()
            .bandwidth(IoDir::Read, Bytes::from_mib(1))
            .as_bytes_per_sec();
        let expect = Bytes::from_mib(1).as_f64() / bw_1m;
        assert!((done.as_secs() - expect).abs() / expect < 1e-9);
    }
}
