//! Storage device models for the Doppio toolset.
//!
//! The Doppio paper's central observation (Section III-C) is that the
//! *effective* I/O bandwidth of a device depends strongly on the request
//! size of the access stream: at 30 KB requests the HDD/SSD gap is 32×, at
//! 4 KB it is 181×, while at 128 MB (a full HDFS block) it is only 3.7×.
//! This crate makes that relationship a first-class object:
//!
//! * [`BandwidthCurve`] — effective bandwidth as a function of request size,
//!   with log–log interpolation between calibration points (the paper's
//!   "one-time disk profiling lookup tables", Section VI.1).
//! * [`DeviceSpec`] / [`presets`] — read/write curve pairs for the paper's
//!   devices (WD 4000FYYZ HDD, Samsung MZ7LM SSD) and generic parametric
//!   devices.
//! * [`Device`] — a *runtime* device: a processor-sharing server in
//!   device-time units, so concurrent streams with different request sizes
//!   contend exactly the way the paper's break-point analysis assumes.
//! * [`StorageTier`] — a device tagged with its contention scope
//!   (per-node vs cluster-shared), the building block for disaggregated
//!   storage profiles in `doppio-tiered`.
//! * [`fio`] — a fio-like microbenchmark driver regenerating Figure 5.
//! * [`IoStat`] — iostat-style request accounting (average request size in
//!   512-byte sectors), used by the model calibrator.
//!
//! # Example
//!
//! ```
//! use doppio_storage::{presets, Bytes};
//!
//! let hdd = presets::hdd_wd4000();
//! let ssd = presets::ssd_mz7lm();
//! let rs = Bytes::from_kib(30); // GATK4 shuffle read segments
//! let gap = ssd.read_curve().bandwidth(rs) / hdd.read_curve().bandwidth(rs);
//! assert!(gap > 25.0 && gap < 40.0, "paper reports a 32x gap at 30 KB");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod device;
pub mod fio;
mod iostat;
pub mod presets;
mod tier;

pub use curve::BandwidthCurve;
pub use device::{Device, DeviceSpec, IoDir, TransferSpec};
pub use iostat::IoStat;
pub use tier::{StorageTier, TierScope};

pub use doppio_events::{Bytes, Rate};
