//! Property tests for bandwidth curves and the runtime device model.

use doppio_events::{Bytes, Rate, SimTime};
use doppio_storage::{presets, BandwidthCurve, Device, IoDir, TransferSpec};
use proptest::prelude::*;

proptest! {
    /// Any valid curve is monotone non-decreasing in request size across its
    /// whole domain, including the extrapolated ends.
    #[test]
    fn curve_is_monotone(
        raw in prop::collection::vec((1u64..1_000_000, 1.0f64..1000.0), 2..8),
        probes in prop::collection::vec(1u64..2_000_000_000, 1..20),
    ) {
        // Build a valid (sorted, monotone) point set from arbitrary input.
        let mut sizes: Vec<u64> = raw.iter().map(|p| p.0).collect();
        sizes.sort();
        sizes.dedup();
        let mut bws: Vec<f64> = raw.iter().take(sizes.len()).map(|p| p.1).collect();
        bws.sort_by(f64::total_cmp);
        let pts: Vec<(Bytes, Rate)> = sizes
            .iter()
            .zip(&bws)
            .map(|(&s, &b)| (Bytes::from_kib(s), Rate::mib_per_sec(b)))
            .collect();
        let curve = BandwidthCurve::from_points(&pts);

        let mut probes = probes;
        probes.sort();
        let mut prev = 0.0f64;
        for p in probes {
            let bw = curve.bandwidth(Bytes::new(p)).as_bytes_per_sec();
            prop_assert!(bw >= prev - 1e-9 * prev.abs());
            prev = bw;
        }
    }

    /// Interpolated bandwidth always lies within the bracketing calibration
    /// values.
    #[test]
    fn interpolation_bracketed(probe_kib in 4u64..131072) {
        let spec = presets::hdd_wd4000();
        let curve = spec.read_curve();
        let bw = curve.bandwidth(Bytes::from_kib(probe_kib)).as_bytes_per_sec();
        let lo = curve.bandwidth(Bytes::from_kib(4)).as_bytes_per_sec();
        let hi = curve.peak().as_bytes_per_sec();
        prop_assert!(bw >= lo - 1e-9 && bw <= hi + 1e-9);
    }

    /// Device makespan for k uncapped identical streams equals total bytes
    /// over effective bandwidth (device saturation), for any k and block
    /// size: the processor-sharing composition loses no capacity.
    #[test]
    fn device_saturation_conserves_capacity(
        k in 1usize..12,
        bs_kib in prop::sample::select(vec![4u64, 16, 30, 256, 1024, 131072]),
        mib_per_stream in 1u64..64,
    ) {
        let spec = presets::ssd_mz7lm();
        // The device clamps request size to the transfer size.
        let rs = Bytes::from_kib(bs_kib).min(Bytes::from_mib(mib_per_stream));
        let bw = spec.bandwidth(IoDir::Read, rs).as_bytes_per_sec();
        let mut dev = Device::new(spec);
        for tag in 0..k as u64 {
            dev.submit(SimTime::ZERO, TransferSpec {
                dir: IoDir::Read,
                bytes: Bytes::from_mib(mib_per_stream),
                request_size: rs,
                stream_cap: None,
                tag,
            });
        }
        let mut makespan = SimTime::ZERO;
        while let Some(t) = dev.next_completion() {
            dev.advance(t);
            dev.take_completed();
            makespan = t;
        }
        let expect = k as f64 * Bytes::from_mib(mib_per_stream).as_f64() / bw;
        let rel = (makespan.as_secs() - expect).abs() / expect;
        prop_assert!(rel < 1e-6, "makespan {} expect {}", makespan.as_secs(), expect);
    }

    /// With per-stream caps, aggregate throughput is min(k*T, BW) — the
    /// paper's break-point law b = BW / T.
    #[test]
    fn break_point_law(
        k in 1usize..16,
        t_mibps in 10.0f64..200.0,
    ) {
        let spec = presets::ssd_mz7lm();
        let rs = Bytes::from_kib(30);
        let bw = spec.bandwidth(IoDir::Read, rs).as_bytes_per_sec();
        let t = Rate::mib_per_sec(t_mibps);
        let mut dev = Device::new(spec);
        let per = Bytes::from_mib(32);
        for tag in 0..k as u64 {
            dev.submit(SimTime::ZERO, TransferSpec {
                dir: IoDir::Read,
                bytes: per,
                request_size: rs,
                stream_cap: Some(t),
                tag,
            });
        }
        let mut makespan = SimTime::ZERO;
        while let Some(tc) = dev.next_completion() {
            dev.advance(tc);
            dev.take_completed();
            makespan = tc;
        }
        let aggregate = (k as f64 * t.as_bytes_per_sec()).min(bw);
        let expect = k as f64 * per.as_f64() / aggregate;
        let rel = (makespan.as_secs() - expect).abs() / expect;
        prop_assert!(rel < 1e-6, "k={k}, makespan {} expect {}", makespan.as_secs(), expect);
    }
}
