//! Seeded scenario sets over a shared memoization cache.
//!
//! A *scenario* is one fully specified simulator evaluation: workload id,
//! application, cluster, and Spark configuration (whose `seed` field makes
//! replicas distinct). Batch studies — error bars, configuration sweeps,
//! regression suites — build a [`ScenarioSet`] and fan it out over a
//! [`doppio_engine::Engine`]; results are memoized under each scenario's
//! canonical fingerprint, so a scenario revisited by a later batch (or
//! repeated within one) is served from cache instead of re-simulated.
//!
//! Determinism contract: each scenario's result depends only on its own
//! fields (the simulator is deterministic per seed), the engine preserves
//! input order, and the fingerprint covers every simulation-relevant field
//! including the seed. Hence `run_all` returns byte-identical results at
//! any thread count, and two scenarios differing only in seed never share
//! a cache entry.

use doppio_cluster::ClusterSpec;
use doppio_engine::{Engine, Fingerprint, FingerprintBuilder, Fingerprintable, MemoCache};
use doppio_sparksim::{
    App, AppPlan, AppRun, FaultEvent, FaultPlan, SimError, Simulation, SparkConf,
};

/// One fully specified simulator evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload identifier (e.g. `"gatk4"`); part of the cache key so two
    /// workloads that happen to build equal apps still key separately.
    pub workload: String,
    /// The application to run.
    pub app: App,
    /// The cluster to run it on.
    pub cluster: ClusterSpec,
    /// Spark configuration, including the RNG seed.
    pub conf: SparkConf,
    /// Faults to inject (empty for a clean run). Part of the fingerprint,
    /// so a faulty run never aliases the clean run's cache entry.
    pub faults: FaultPlan,
}

impl Scenario {
    /// Runs this scenario on the discrete-event simulator (no caching).
    ///
    /// # Errors
    ///
    /// Propagates simulator planning failures.
    pub fn run(&self) -> Result<AppRun, SimError> {
        Simulation::with_conf(self.cluster.clone(), self.conf.clone())
            .with_faults(self.faults.clone())
            .run(&self.app)
    }
}

impl Fingerprintable for Scenario {
    fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.write_str(&self.workload);
        self.app.fingerprint_into(fp);
        self.cluster.fingerprint_into(fp);
        self.conf.fingerprint_into(fp);
        self.faults.fingerprint_into(fp);
    }
}

impl Scenario {
    /// Fingerprint of everything the *planner* consumes: app, cluster,
    /// and configuration with the seed normalized away. Two scenarios
    /// with equal plan families produce identical [`AppPlan`]s (planning
    /// is seed-independent, and fault plans only matter at execution —
    /// executor-loss plans are excluded from plan reuse separately), so
    /// [`ScenarioSet::run_batched`] plans each family once per batch.
    fn plan_family(&self) -> Fingerprint {
        let mut fp = FingerprintBuilder::new();
        self.app.fingerprint_into(&mut fp);
        self.cluster.fingerprint_into(&mut fp);
        self.conf.clone().with_seed(0).fingerprint_into(&mut fp);
        fp.finish()
    }

    /// Whether the fault plan can lose an executor, in which case later
    /// jobs' plans depend on execution outcomes and a pre-built plan
    /// must not be reused.
    fn plan_reusable(&self) -> bool {
        !self
            .faults
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::ExecutorLoss { .. }))
    }
}

/// A batch of scenarios sharing one fingerprint-keyed result cache.
#[derive(Debug)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
    cache: MemoCache<Fingerprint, AppRun>,
}

impl ScenarioSet {
    /// A set with an unbounded cache.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        ScenarioSet {
            scenarios,
            cache: MemoCache::unbounded(),
        }
    }

    /// A set whose cache keeps at most `capacity` results (FIFO eviction).
    pub fn with_cache_capacity(scenarios: Vec<Scenario>, capacity: usize) -> Self {
        ScenarioSet {
            scenarios,
            cache: MemoCache::with_capacity(capacity),
        }
    }

    /// One scenario per seed, sharing everything else — the paper's
    /// five-run error-bar batches.
    pub fn seeded_replicas(
        workload: impl Into<String>,
        app: App,
        cluster: ClusterSpec,
        conf: SparkConf,
        seeds: &[u64],
    ) -> Self {
        let workload = workload.into();
        Self::new(
            seeds
                .iter()
                .map(|&seed| Scenario {
                    workload: workload.clone(),
                    app: app.clone(),
                    cluster: cluster.clone(),
                    conf: conf.clone().with_seed(seed),
                    faults: FaultPlan::empty(),
                })
                .collect(),
        )
    }

    /// Applies one fault plan to every scenario in the batch — the faulty
    /// twin of a clean sweep. Fingerprints shift with the plan, so faulty
    /// results never collide with cached clean ones.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        for s in &mut self.scenarios {
            s.faults = plan.clone();
        }
        self
    }

    /// The scenarios, in run order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Appends further scenarios to the batch (they share the cache).
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }

    /// Runs every scenario, fanning out over `engine`, returning results
    /// in scenario order. Cached results are returned without
    /// re-simulating.
    ///
    /// # Errors
    ///
    /// Returns the first failure in scenario order.
    pub fn run_all(&self, engine: &Engine) -> Result<Vec<AppRun>, SimError> {
        engine
            .par_map(&self.scenarios, |s| {
                let key = s.fingerprint();
                if let Some(hit) = self.cache.get(&key) {
                    return Ok(hit);
                }
                let run = s.run()?;
                self.cache.insert(key, run.clone());
                Ok(run)
            })
            .into_iter()
            .collect()
    }

    /// Runs every scenario in contiguous batches of `width`, planning
    /// each *plan family* (scenarios differing only in seed or in a
    /// reusable fault plan) once per batch and executing the shared plan
    /// per lane.
    ///
    /// Results are bit-identical to [`ScenarioSet::run_all`] at every
    /// width: planning is seed-independent and ignores executor
    /// feedback, so a pre-built [`AppPlan`] replayed through
    /// `Simulation::run_planned` walks the exact same event sequence as
    /// the interleaved `Scenario::run`. Scenarios whose fault plan can
    /// lose an executor (where that independence breaks) fall back to
    /// the interleaved path lane-by-lane.
    ///
    /// Lanes are processed in batch order against the shared memo cache:
    /// a batch of `K` identical scenarios costs one simulation and `K-1`
    /// cache hits.
    ///
    /// # Errors
    ///
    /// Returns the first failure in scenario order.
    pub fn run_batched(&self, engine: &Engine, width: usize) -> Result<Vec<AppRun>, SimError> {
        engine
            .par_map_batched(&self.scenarios, width, |batch| {
                // Plans built by earlier lanes of this batch, keyed by
                // plan family; later lanes clone instead of re-planning.
                let mut plans: Vec<(Fingerprint, AppPlan)> = Vec::new();
                batch
                    .iter()
                    .map(|s| {
                        let key = s.fingerprint();
                        if let Some(hit) = self.cache.get(&key) {
                            return Ok(hit);
                        }
                        let run = if s.plan_reusable() {
                            let sim = Simulation::with_conf(s.cluster.clone(), s.conf.clone())
                                .with_faults(s.faults.clone());
                            let family = s.plan_family();
                            let plan = match plans.iter().find(|(f, _)| *f == family) {
                                Some((_, p)) => p,
                                None => {
                                    plans.push((family, sim.plan(&s.app)?));
                                    &plans.last().expect("just pushed").1
                                }
                            };
                            sim.run_planned(plan)?
                        } else {
                            s.run()?
                        };
                        self.cache.insert(key, run.clone());
                        Ok(run)
                    })
                    .collect()
            })
            .into_iter()
            .collect()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Distinct results currently cached.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_cluster::HybridConfig;
    use doppio_workloads::terasort;

    fn set(seeds: &[u64]) -> ScenarioSet {
        ScenarioSet::seeded_replicas(
            "terasort",
            terasort::app(&terasort::Params::scaled_down()),
            ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd),
            SparkConf::paper().with_cores(8),
            seeds,
        )
    }

    #[test]
    fn replicas_differ_only_in_seed_and_key_separately() {
        let s = set(&[1, 2]);
        let fps: Vec<Fingerprint> = s.scenarios().iter().map(|x| x.fingerprint()).collect();
        assert_ne!(fps[0], fps[1], "seed is part of the fingerprint");
    }

    #[test]
    fn second_pass_is_all_hits() {
        let s = set(&[1, 2, 3]);
        let engine = Engine::serial();
        let first = s.run_all(&engine).unwrap();
        assert_eq!(s.cache_misses(), 3);
        let second = s.run_all(&engine).unwrap();
        assert_eq!(s.cache_hits(), 3, "second pass served from cache");
        assert_eq!(first, second);
    }

    #[test]
    fn fault_plan_changes_the_fingerprint() {
        use doppio_sparksim::FaultEvent;
        let clean = set(&[1]);
        let faulty =
            set(&[1]).with_fault_plan(FaultPlan::new(9).with_event(FaultEvent::ExecutorLoss {
                node: 1,
                at_secs: 5.0,
            }));
        assert_ne!(
            clean.scenarios()[0].fingerprint(),
            faulty.scenarios()[0].fingerprint(),
            "a faulty run must not alias the clean run's cache entry"
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let s1 = set(&[7, 8, 9]);
        let s2 = set(&[7, 8, 9]);
        let serial = s1.run_all(&Engine::serial()).unwrap();
        let parallel = s2.run_all(&Engine::with_jobs(3)).unwrap();
        assert_eq!(serial, parallel);
    }
}
