//! `doppio` — command-line front end for the toolset.
//!
//! ```text
//! doppio fio [hdd] [ssd] [std-pd:<GB>] [ssd-pd:<GB>]
//! doppio simulate --workload <name> [--nodes N] [--cores P] [--config C] [--paper] [--seed S]
//!                 [--runs R] [--jobs J] [--batch W] [--inject <profile>] [--fault-seed S]
//!                 [--storage <profile>] [--emit-observation]
//! doppio predict  --workload <name> [--nodes N] [--cores P] [--config C] [--paper] [--jobs J]
//!                 [--profile-nodes N] [--corrected] [--observe-log FILE]
//! doppio whatif cache-sweep [--workload <name>] [--nodes N] [--cores P] [--config C]
//!                 [--storage <profile>] [--working-set-gib G] [--paper] [--jobs J]
//!                 [--smoke] [--out PATH]
//! doppio optimize [--paper] [--jobs J]
//! doppio phases --bw <MiB/s> --t <MiB/s> --lambda <λ> [--cores P] [--sweep] [--jobs J]
//! doppio serve   [--addr H:P] [--workers N] [--queue-bound Q] [--cache C] [--deadline-ms D]
//!                [--port-file PATH] [--allow-shutdown] [--max-line-bytes B] [--idle-timeout-ms T]
//!                [--shards N] [--vnodes V] [--hot-threshold T] [--hot-replicas R]
//!                [--snapshot-dir DIR] [--pid-dir DIR]
//! doppio health  [--addr H:P] [--wait-ms W]
//! doppio loadgen [--addr H:P] [--smoke] [--connections N] [--requests N] [--repeats R]
//!                [--out PATH] [--shutdown-after] [--chaos <profile>] [--chaos-seed S]
//!                [--connect-timeout-ms T] [--read-timeout-ms T] [--procs N]
//!                [--hot-worker] [--hold N] [--observe-log FILE]
//!                [--kill-after N] [--kill-pid-file PATH] [--expect-restarts N]
//! doppio list
//! ```
//!
//! Argument parsing is hand-rolled to keep the dependency set at the
//! approved list (DESIGN.md §6).

use std::process::ExitCode;

use doppio::cloud::optimize::{grid_search_with, r1_reference, r2_reference, SearchSpace};
use doppio::cloud::{disks, CloudDiskType, CostEvaluator, EvaluateCost, MemoizedEvaluator};
use doppio::cluster::{presets, ClusterSpec, HybridConfig, StorageProfile};
use doppio::engine::Engine;
use doppio::events::Bytes;
use doppio::model::phases::{break_point, classify, turning_point};
use doppio::model::{Calibrator, PredictEnv, SimPlatform};
use doppio::scenario::ScenarioSet;
use doppio::sparksim::{FaultPlan, FaultProfile, IoChannel, Simulation, SparkConf};
use doppio::storage::fio::{run_analytic, FioJob};
use doppio::workloads::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "fio" => cmd_fio(rest),
        "simulate" => cmd_simulate(rest),
        "predict" => cmd_predict(rest),
        "whatif" => cmd_whatif(rest),
        "optimize" => cmd_optimize(rest),
        "phases" => cmd_phases(rest),
        "serve" => cmd_serve(rest),
        "health" => cmd_health(rest),
        "loadgen" => cmd_loadgen(rest),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "doppio — I/O-aware Spark performance analysis, modeling and optimization

USAGE:
  doppio fio [hdd] [ssd] [std-pd:<GB>] [ssd-pd:<GB>]
      print effective-bandwidth/IOPS lookup tables
  doppio simulate --workload <name> [--nodes N] [--cores P] [--config C] [--paper] [--seed S]
                  [--runs R] [--jobs J] [--batch W] [--inject <profile>] [--fault-seed S]
                  [--storage <profile>] [--emit-observation]
      run a workload on the discrete-event simulator; --runs R fans R seeded
      replicas (seeds S..S+R) out over the scenario engine in batches of
      --batch W lanes (default 8) that share one pre-built plan per batch;
      results are bit-identical at any W; --inject draws a deterministic
      fault plan (seeded by --fault-seed) from a named profile and reports
      the clean run next to the faulty one; --storage places the dataset on
      a disaggregated tier (object store, cache tier or parallel FS)
      instead of node-local HDFS disks; --emit-observation prints the
      single run as one doppio-observe/v1 NDJSON line (the shape `serve`
      ingests and `predict --observe-log` replays) instead of the report
  doppio predict --workload <name> [--nodes N] [--cores P] [--config C] [--paper] [--jobs J]
                 [--profile-nodes N] [--corrected] [--observe-log FILE]
      calibrate the Doppio model (4 sample runs) and compare exp vs model;
      --observe-log replays a doppio-observe/v1 NDJSON file into an online
      learner first and --corrected adds the residual-corrected column
      next to the analytical one, with both MAPEs on the last line
  doppio whatif cache-sweep [--workload <name>] [--nodes N] [--cores P] [--config C]
                  [--storage <profile>] [--working-set-gib G] [--paper] [--jobs J]
                  [--smoke] [--out PATH]
      calibrate the model, then sweep the per-node cache capacity in front
      of a remote storage tier and emit the knee curve as JSON (strictly
      parsed back before reporting success); --working-set-gib overrides
      the dataset size driving the hit ratio; --smoke shrinks the sweep
      for CI and additionally fails unless the curve is monotone
  doppio optimize [--paper] [--jobs J]
      find the cheapest cloud configuration for GATK4 (Section VI); the grid
      search fans out over J workers with memoized cost evaluations
  doppio phases --bw <MiB/s> --t <MiB/s> --lambda <λ> [--cores P] [--sweep] [--jobs J]
      break-point analysis: b = BW/T, B = λ·b, phase classification
      (--sweep classifies every core count 1..=P)
  doppio serve [--addr H:P] [--workers N] [--queue-bound Q] [--cache C] [--deadline-ms D]
               [--port-file PATH] [--allow-shutdown] [--max-line-bytes B] [--idle-timeout-ms T]
               [--shards N] [--vnodes V] [--hot-threshold T] [--hot-replicas R]
               [--snapshot-dir DIR] [--pid-dir DIR]
      run the model-serving front end: newline-delimited JSON over TCP with
      a shared result cache, singleflight deduplication and a bounded
      admission queue that sheds overload with structured 'overloaded'
      replies; evaluations are panic-isolated, request lines are bounded at
      --max-line-bytes, and idle or stalled connections are reaped after
      --idle-timeout-ms; --port-file records the bound address for scripts
      and --allow-shutdown lets a client drain the server remotely;
      --snapshot-dir persists each workload's learner snapshot on every
      ingest (and restores it at startup), so correctors survive restarts;
      --shards N launches N shard processes behind a consistent-hash
      router on --addr instead of one server (replies stay bit-identical):
      --vnodes sets ring granularity, and past --hot-threshold repeats a
      hot key fans out over --hot-replicas shards; a dead shard's keys
      fail over to their ring successor behind a per-shard circuit
      breaker, a supervisor restarts crashed shards (seeded backoff,
      crash-loop budget) and the router re-admits them through a warm-up
      probe gate; --pid-dir writes one shard-<i>.pid per shard for chaos
      drivers; slow idempotent requests are hedged to the ring successor
  doppio health [--addr H:P] [--wait-ms W]
      ask a serve endpoint for its health payload (readiness, queue depth,
      cache stats, panic count, uptime); with --wait-ms, poll until the
      server reports ready or the wait expires — the CI startup gate
  doppio loadgen [--addr H:P] [--smoke] [--connections N] [--requests N] [--repeats R]
                 [--out PATH] [--shutdown-after] [--chaos <profile>] [--chaos-seed S]
                 [--connect-timeout-ms T] [--read-timeout-ms T] [--procs N]
                 [--hot-worker] [--hold N] [--observe-log FILE]
                 [--kill-after N] [--kill-pid-file PATH] [--expect-restarts N]
      drive a serve endpoint through cold/hot closed-loop phases plus a
      singleflight burst, recording latency percentiles and the
      hot-over-cold speedup to BENCH_serve_throughput.json (strictly
      parsed back); without --addr a throwaway in-process server is used;
      --smoke shrinks the run for CI and fails on any shed request, lost
      reply or panic; --chaos adds a phase driven through a seeded
      fault-injecting proxy and records retry/breaker metrics; --procs N
      re-runs the hot phase from N generator processes and merges their
      latency histograms (the multi-process throughput measurement for a
      shard tier); --hot-worker is the child mode --procs launches, and
      --hold N opens N idle connections until stdin closes (reactor
      capacity tests); --observe-log FILE switches to the recalibration
      replay: every observation in the doppio-observe/v1 NDJSON file is
      predicted analytically, fed to the server's `observe` verb, then
      re-predicted with the corrector, and the analytic-vs-corrected MAPE
      comparison lands in LEARN_replay.json (strictly parsed back);
      --smoke additionally fails unless the corrected error is lower;
      --kill-after N SIGKILLs the pid in --kill-pid-file after N cold
      requests (the shard-restart chaos leg: lost replies are counted,
      not fatal) and --expect-restarts N waits until the router reports N
      supervisor restarts and health goes ready before the final stats
  doppio list
      list workloads, disk configurations, fault profiles, chaos profiles
      and correctors

--jobs J sets the scenario-engine worker count (0 or absent = one per core);
results are identical at any J — the engine preserves input order.
configs: 2ssd | 2hdd | hdd-ssd (HDFS=HDD, local=SSD) | ssd-hdd (HDFS=SSD, local=HDD)
storage profiles: local (default), s3, s3-cached, lustre
workloads: gatk4, lr-small, lr-large, svm, pagerank, triangle, terasort
fault profiles: flaky-tasks, executor-loss, slow-disk, stragglers, chaos
chaos profiles: slow-wire, flaky-connect, truncate, garbage, disconnect-heavy
correctors: none, ridge";

/// Fetches `--key value` from the argument list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn parse_config(s: &str) -> Result<HybridConfig, String> {
    match s {
        "2ssd" | "ssd" => Ok(HybridConfig::SsdSsd),
        "2hdd" | "hdd" => Ok(HybridConfig::HddHdd),
        "hdd-ssd" => Ok(HybridConfig::HddSsd),
        "ssd-hdd" => Ok(HybridConfig::SsdHdd),
        other => Err(format!(
            "unknown config '{other}' (2ssd|2hdd|hdd-ssd|ssd-hdd)"
        )),
    }
}

fn parse_workload(s: &str) -> Result<Workload, String> {
    Ok(match s {
        "gatk4" => Workload::Gatk4,
        "lr-small" => Workload::LrSmall,
        "lr-large" => Workload::LrLarge,
        "svm" => Workload::Svm,
        "pagerank" | "pr" => Workload::PageRank,
        "triangle" | "tc" => Workload::TriangleCount,
        "terasort" | "ts" => Workload::Terasort,
        other => return Err(format!("unknown workload '{other}' (try `doppio list`)")),
    })
}

fn parse_num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

/// Fetches `--storage <profile>` (absent = the paper's node-local model).
fn parse_storage(args: &[String]) -> Result<StorageProfile, String> {
    match opt(args, "--storage") {
        None => Ok(StorageProfile::Local),
        Some(name) => StorageProfile::parse(name)
            .ok_or_else(|| format!("unknown storage profile '{name}' (try `doppio list`)")),
    }
}

/// Fetches `--inject <profile>` if present.
fn parse_fault_profile(args: &[String]) -> Result<Option<FaultProfile>, String> {
    match opt(args, "--inject") {
        None => Ok(None),
        Some(name) => FaultProfile::parse(name)
            .map(Some)
            .ok_or_else(|| format!("unknown fault profile '{name}' (try `doppio list`)")),
    }
}

/// Builds the scenario engine from `--jobs N` (0 = one worker per core;
/// absent defaults to all cores). Results are identical at any setting —
/// the engine preserves input order — so parallel is the safe default.
fn parse_engine(args: &[String]) -> Result<Engine, String> {
    match opt(args, "--jobs") {
        None => Ok(Engine::auto()),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--jobs expects a number, got '{v}'"))?;
            Ok(if n == 0 {
                Engine::auto()
            } else {
                Engine::with_jobs(n)
            })
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("workloads:");
    for w in Workload::ALL {
        println!(
            "  {:<14} ({} scaled / paper-scale apps available)",
            w.name(),
            w
        );
    }
    println!();
    println!("disk configurations (Table III):");
    for c in HybridConfig::ALL {
        println!(
            "  {:<26} HDFS={}, local={}",
            c.label(),
            c.hdfs_device().name(),
            c.local_device().name()
        );
    }
    println!();
    println!("storage profiles (simulate --storage <profile>):");
    for &(name, describe) in doppio::cluster::PROFILE_NAMES {
        println!("  {name:<14} {describe}");
    }
    println!();
    println!("fault profiles (simulate --inject <profile>):");
    for p in FaultProfile::ALL {
        println!("  {:<14} {}", p.name(), p.describe());
    }
    println!();
    println!("chaos profiles (loadgen --chaos <profile>):");
    for p in doppio::serve::ChaosProfile::ALL {
        println!("  {:<18} {}", p.name(), p.describe());
    }
    println!();
    println!("correctors (predict --corrected / serve observe):");
    for (name, describe) in doppio::learn::CORRECTOR_NAMES {
        println!("  {name:<14} {describe}");
    }
    Ok(())
}

fn cmd_fio(args: &[String]) -> Result<(), String> {
    let specs: Vec<doppio::storage::DeviceSpec> = if args.is_empty() {
        vec![
            doppio::storage::presets::hdd_wd4000(),
            doppio::storage::presets::ssd_mz7lm(),
        ]
    } else {
        args.iter()
            .map(|a| -> Result<_, String> {
                if a == "hdd" {
                    Ok(doppio::storage::presets::hdd_wd4000())
                } else if a == "ssd" {
                    Ok(doppio::storage::presets::ssd_mz7lm())
                } else if let Some(gb) = a.strip_prefix("std-pd:") {
                    let gb: u64 = gb.parse().map_err(|_| format!("bad size in '{a}'"))?;
                    Ok(disks::device(
                        CloudDiskType::StandardPd,
                        Bytes::new(gb * 1_000_000_000),
                    ))
                } else if let Some(gb) = a.strip_prefix("ssd-pd:") {
                    let gb: u64 = gb.parse().map_err(|_| format!("bad size in '{a}'"))?;
                    Ok(disks::device(
                        CloudDiskType::SsdPd,
                        Bytes::new(gb * 1_000_000_000),
                    ))
                } else {
                    Err(format!("unknown device '{a}'"))
                }
            })
            .collect::<Result<_, _>>()?
    };
    for spec in specs {
        println!();
        println!("{spec}:");
        println!("  {:>10} {:>14} {:>12}", "block", "BW (MiB/s)", "IOPS");
        for r in run_analytic(&FioJob::read_sweep(spec)) {
            println!(
                "  {:>10} {:>14.1} {:>12.0}",
                r.block_size.to_string(),
                r.bandwidth.as_mib_per_sec(),
                r.iops
            );
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let workload = parse_workload(opt(args, "--workload").ok_or("missing --workload")?)?;
    let nodes: usize = parse_num(args, "--nodes", 3)?;
    let cores: u32 = parse_num(args, "--cores", 36)?;
    let seed: u64 = parse_num(args, "--seed", 0xD0_99_10)?;
    let fault_seed: u64 = parse_num(args, "--fault-seed", 7)?;
    let runs: u64 = parse_num(args, "--runs", 1)?;
    let batch: usize = parse_num(args, "--batch", 8)?;
    let engine = parse_engine(args)?;
    let config = parse_config(opt(args, "--config").unwrap_or("2ssd"))?;
    let app = if flag(args, "--paper") {
        workload.paper_app()
    } else {
        workload.scaled_app()
    };

    let emit_observation = flag(args, "--emit-observation");
    if emit_observation && runs > 1 {
        return Err("--emit-observation records a single run; drop --runs".into());
    }

    let storage = parse_storage(args)?;
    let cluster = ClusterSpec::paper_cluster(nodes, 36, config).with_storage(storage);
    let conf = SparkConf::paper().with_cores(cores);

    // `--inject` expands a named profile into a concrete plan. The profile
    // places events relative to the run's length, so a clean run supplies
    // the horizon first; the plan itself depends only on (profile,
    // fault-seed, nodes, horizon) and replays identically at any --jobs.
    let injected: Option<(FaultProfile, f64, FaultPlan)> = match parse_fault_profile(args)? {
        None => None,
        Some(profile) => {
            let clean = Simulation::with_conf(cluster.clone(), conf.clone().with_seed(seed))
                .run(&app)
                .map_err(|e| e.to_string())?;
            let horizon = clean.total_time().as_secs();
            Some((profile, horizon, profile.plan(fault_seed, nodes, horizon)))
        }
    };

    if runs > 1 {
        let seeds: Vec<u64> = (0..runs).map(|i| seed.wrapping_add(i)).collect();
        let mut set = ScenarioSet::seeded_replicas(workload.name(), app, cluster, conf, &seeds);
        if let Some((_, _, plan)) = &injected {
            set = set.with_fault_plan(plan.clone());
        }
        let results = set.run_batched(&engine, batch).map_err(|e| e.to_string())?;
        let mins: Vec<f64> = results
            .iter()
            .map(|r| r.total_time().as_secs() / 60.0)
            .collect();
        let mean = mins.iter().sum::<f64>() / mins.len() as f64;
        let spread = mins.iter().fold(0.0f64, |m, &v| m.max((v - mean).abs()));
        println!(
            "{} x{} seeded runs ({} jobs): mean {:.1} min, max dev {:.1} min",
            workload.name(),
            runs,
            engine.jobs(),
            mean,
            spread
        );
        for ((s, m), r) in seeds.iter().zip(&mins).zip(&results) {
            let faults = r.total_faults();
            if faults.is_clean() {
                println!("  seed {s:>8}: {m:>7.1} min");
            } else {
                println!("  seed {s:>8}: {m:>7.1} min  [{faults}]");
            }
        }
        if let Some((profile, _, _)) = &injected {
            println!(
                "fault profile '{}' (fault seed {fault_seed})",
                profile.name()
            );
        }
        return Ok(());
    }

    let sim = Simulation::with_conf(cluster, conf.with_seed(seed));
    let run = match &injected {
        Some((_, _, plan)) => sim.with_faults(plan.clone()),
        None => sim,
    }
    .run(&app)
    .map_err(|e| e.to_string())?;
    // `--emit-observation` replaces the human report with the one NDJSON
    // line the serve tier ingests — pipe it straight into a fixture file.
    if emit_observation {
        let obs = doppio::learn::RunObservation::from_run(
            doppio::serve::protocol::workload_name(workload),
            nodes,
            cores,
            config,
            flag(args, "--paper"),
            &run,
        );
        println!("{}", obs.to_json_line());
        return Ok(());
    }
    println!("{run}");
    println!("per-stage I/O:");
    for s in run.stages() {
        print!("  {:<24}", s.name);
        for ch in IoChannel::DISK_CHANNELS {
            let c = s.channel(ch);
            if !c.bytes.is_zero() {
                print!(" {}={:.1}GB", ch, c.bytes.as_gib());
            }
        }
        if let Some(l) = s.tasks.lambda() {
            print!("  λ={l:.1}");
        }
        println!();
    }
    if let Some((profile, clean_secs, _)) = injected {
        let faulty_secs = run.total_time().as_secs();
        println!(
            "fault injection '{}' (fault seed {fault_seed}):",
            profile.name()
        );
        println!(
            "  clean {:.1} min -> faulty {:.1} min ({:+.1}%)",
            clean_secs / 60.0,
            faulty_secs / 60.0,
            (faulty_secs / clean_secs - 1.0) * 100.0
        );
        println!("  {}", run.total_faults());
    }
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let workload = parse_workload(opt(args, "--workload").ok_or("missing --workload")?)?;
    let nodes: usize = parse_num(args, "--nodes", 5)?;
    let cores: u32 = parse_num(args, "--cores", 36)?;
    let profile_nodes: usize = parse_num(args, "--profile-nodes", 3)?;
    let config = parse_config(opt(args, "--config").unwrap_or("2ssd"))?;
    let app = if flag(args, "--paper") {
        workload.paper_app()
    } else {
        workload.scaled_app()
    };

    let engine = parse_engine(args)?;
    eprintln!(
        "calibrating on {profile_nodes} nodes (4 sample runs, {} jobs)...",
        engine.jobs()
    );
    let platform = SimPlatform::new(
        app.clone(),
        presets::paper_node(36, HybridConfig::SsdSsd),
        profile_nodes,
        SparkConf::paper(),
    );
    let report = Calibrator::default()
        .calibrate_with(&platform, app.name(), &engine)
        .map_err(|e| e.to_string())?;
    for w in &report.warnings {
        eprintln!("note: {w}");
    }

    // `--observe-log` replays recorded runs into an online learner before
    // predicting; `--corrected` (implied by a log) adds its column.
    let corrected = flag(args, "--corrected") || opt(args, "--observe-log").is_some();
    let mut learner = corrected.then(|| doppio::learn::Learner::new(report.model.clone()));
    if let (Some(path), Some(learner)) = (opt(args, "--observe-log"), learner.as_mut()) {
        let wire = doppio::serve::protocol::workload_name(workload);
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut ingested = 0u64;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obs = doppio::learn::RunObservation::parse_line(line)
                .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            // Foreign workloads are skipped, not rejected: one log can
            // hold a whole cluster's history.
            if obs.workload == wire {
                learner.ingest(obs);
                ingested += 1;
            }
        }
        eprintln!(
            "ingested {ingested} observation(s) from {path} (corrector: {} v{})",
            learner.corrector().kind(),
            learner.corrector().version()
        );
    }

    let cluster = ClusterSpec::paper_cluster(nodes, 36, config);
    let run = Simulation::with_conf(
        cluster,
        SparkConf::paper().with_cores(cores).without_noise(),
    )
    .run(&app)
    .map_err(|e| e.to_string())?;
    let env = PredictEnv::hybrid(nodes, cores, config);

    println!(
        "target: {} nodes x {} cores, {}",
        nodes,
        cores,
        config.label()
    );
    match &learner {
        Some(_) => println!(
            "  {:<24} {:>10} {:>12} {:>8} {:>11} {:>8}",
            "stage", "exp (min)", "model (min)", "err %", "corr (min)", "err %"
        ),
        None => println!(
            "  {:<24} {:>10} {:>12} {:>8}",
            "stage", "exp (min)", "model (min)", "err %"
        ),
    }
    let mut analytic_pairs = Vec::new();
    let mut corrected_pairs = Vec::new();
    for s in run.stages() {
        let exp = s.duration.as_secs();
        let model_stage = report
            .model
            .stages()
            .iter()
            .zip(run.stages())
            .filter(|(_, rs)| rs.name == s.name)
            .map(|(ms, _)| ms)
            .next();
        let pred = model_stage.map_or(0.0, |ms| ms.predict(&env));
        let err = if exp > 0.0 {
            (pred - exp).abs() / exp * 100.0
        } else {
            0.0
        };
        analytic_pairs.push((pred, exp));
        match &learner {
            Some(learner) => {
                let corr =
                    model_stage.map_or(0.0, |ms| learner.corrector().correct_stage(ms, &env));
                let cerr = if exp > 0.0 {
                    (corr - exp).abs() / exp * 100.0
                } else {
                    0.0
                };
                corrected_pairs.push((corr, exp));
                println!(
                    "  {:<24} {:>10.1} {:>12.1} {:>8.1} {:>11.1} {:>8.1}",
                    s.name,
                    exp / 60.0,
                    pred / 60.0,
                    err,
                    corr / 60.0,
                    cerr
                );
            }
            None => println!(
                "  {:<24} {:>10.1} {:>12.1} {:>8.1}",
                s.name,
                exp / 60.0,
                pred / 60.0,
                err
            ),
        }
    }
    let total_exp = run.total_time().as_secs();
    let total_pred = report.model.predict(&env);
    match &learner {
        Some(learner) => {
            let total_corr = learner.corrected_predict(&env);
            println!(
                "  {:<24} {:>10.1} {:>12.1} {:>8.1} {:>11.1} {:>8.1}",
                "TOTAL",
                total_exp / 60.0,
                total_pred / 60.0,
                (total_pred - total_exp).abs() / total_exp * 100.0,
                total_corr / 60.0,
                (total_corr - total_exp).abs() / total_exp * 100.0
            );
            println!(
                "per-stage MAPE: analytic {:.1}% | corrected {:.1}% ({} v{}, window {})",
                doppio::learn::mape(&analytic_pairs),
                doppio::learn::mape(&corrected_pairs),
                learner.corrector().kind(),
                learner.corrector().version(),
                learner.window_len()
            );
        }
        None => println!(
            "  {:<24} {:>10.1} {:>12.1} {:>8.1}",
            "TOTAL",
            total_exp / 60.0,
            total_pred / 60.0,
            (total_pred - total_exp).abs() / total_exp * 100.0
        ),
    }
    Ok(())
}

fn cmd_whatif(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("cache-sweep") => cmd_cache_sweep(&args[1..]),
        Some(other) => Err(format!("unknown whatif analysis '{other}' (cache-sweep)")),
        None => Err("whatif expects an analysis (cache-sweep)".into()),
    }
}

/// `whatif cache-sweep` — calibrate the model, sweep the per-node cache
/// capacity in front of a remote storage tier, and emit the knee curve as
/// JSON on stdout. The JSON is strictly parsed back before the command
/// reports success, so a malformed artifact fails CI instead of landing
/// silently (same contract as `loadgen`'s report).
fn cmd_cache_sweep(args: &[String]) -> Result<(), String> {
    use doppio::engine::json::{self, Value};
    use std::fmt::Write as _;

    let smoke = flag(args, "--smoke");
    let workload = parse_workload(opt(args, "--workload").unwrap_or("terasort"))?;
    let nodes: usize = parse_num(args, "--nodes", 64)?;
    let cores: u32 = parse_num(args, "--cores", 32)?;
    let config = parse_config(opt(args, "--config").unwrap_or("2ssd"))?;
    let storage = match opt(args, "--storage") {
        None => StorageProfile::s3(),
        Some(_) => parse_storage(args)?,
    };
    if storage.is_local() {
        return Err("cache-sweep needs a remote tier; pick --storage s3|s3-cached|lustre".into());
    }
    let app = if flag(args, "--paper") {
        workload.paper_app()
    } else {
        workload.scaled_app()
    };
    let engine = parse_engine(args)?;

    eprintln!(
        "calibrating {} on 3 nodes (4 sample runs, {} jobs)...",
        workload.name(),
        engine.jobs()
    );
    let platform = SimPlatform::new(
        app,
        presets::paper_node(36, HybridConfig::SsdSsd),
        3,
        SparkConf::paper(),
    );
    let model = Calibrator::default()
        .calibrate_with(&platform, workload.name(), &engine)
        .map_err(|e| e.to_string())?
        .model;

    // The working set driving the hit ratio defaults to the model's HDFS
    // read volume — what the job actually re-reads from the tier.
    let hdfs_read: f64 = model
        .stages()
        .iter()
        .flat_map(|s| s.channels.iter())
        .filter(|c| c.channel == IoChannel::HdfsRead)
        .map(|c| c.total_bytes.as_f64())
        .sum();
    let working_set = match opt(args, "--working-set-gib") {
        Some(_) => Bytes::from_gib(parse_num(args, "--working-set-gib", 0u64)?),
        None if hdfs_read > 0.0 => Bytes::new(hdfs_read as u64),
        None => return Err("model reads nothing from HDFS; pass --working-set-gib".into()),
    };

    // Capacity grid: fractions of full per-node coverage (ws / N), so the
    // sweep brackets h = 0..1 regardless of the workload's dataset size.
    let fractions: &[f64] = if smoke {
        &[0.0, 0.25, 0.5, 1.0]
    } else {
        &[0.0, 0.0625, 0.125, 0.25, 0.5, 0.75, 1.0, 1.25]
    };
    let full = working_set.scale(1.0 / nodes as f64);
    let caps: Vec<Bytes> = fractions.iter().map(|&f| full.scale(f)).collect();

    let base = PredictEnv::hybrid(nodes, cores, config);
    let sweep = doppio::model::whatif::cache_sweep_with(
        &model,
        &base,
        &storage,
        working_set,
        &caps,
        &engine,
    );
    eprintln!("{sweep}");

    let knee = sweep.knee(1.05);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"workload\":\"{}\",\"profile\":\"{}\",\"nodes\":{nodes},\"cores\":{cores},\"working_set_bytes\":{},\"points\":[",
        workload.name(),
        storage.name(),
        working_set.as_u64()
    );
    for (i, (cap, p)) in caps.iter().zip(&sweep.points).enumerate() {
        let h = doppio::cluster::hit_ratio(working_set, *cap * nodes as u64);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cap_bytes\":{},\"hit_ratio\":{h},\"runtime_secs\":{}}}",
            cap.as_u64(),
            p.runtime_secs
        );
    }
    match knee {
        // knee(t) indexes the first capacity *step* that gains < t; the
        // knee capacity is the last one still worth buying.
        Some(i) => {
            let _ = write!(
                out,
                "],\"knee_index\":{i},\"knee_cap_bytes\":{}}}",
                caps[i].as_u64()
            );
        }
        None => out.push_str("],\"knee_index\":null,\"knee_cap_bytes\":null}"),
    }

    // Strict parse-back: the emitted artifact must round-trip and describe
    // a sane curve before we report success.
    let v = json::parse(&out).map_err(|e| format!("sweep JSON did not round-trip: {e}"))?;
    let points = v
        .get("points")
        .and_then(Value::as_arr)
        .ok_or("sweep JSON is missing its points array")?;
    if points.len() != caps.len() {
        return Err(format!(
            "sweep JSON has {} points, expected {}",
            points.len(),
            caps.len()
        ));
    }
    let mut prev_runtime = f64::INFINITY;
    let mut prev_h = -1.0;
    for p in points {
        let runtime = p
            .get("runtime_secs")
            .and_then(Value::as_f64)
            .ok_or("point is missing runtime_secs")?;
        let h = p
            .get("hit_ratio")
            .and_then(Value::as_f64)
            .ok_or("point is missing hit_ratio")?;
        if !runtime.is_finite() || runtime <= 0.0 {
            return Err(format!("non-positive runtime {runtime} in sweep"));
        }
        if !(0.0..=1.0).contains(&h) || h < prev_h {
            return Err(format!("hit ratio {h} out of order in sweep"));
        }
        if smoke && runtime > prev_runtime * (1.0 + 1e-9) {
            return Err(format!(
                "cache sweep is not monotone: {runtime} s after {prev_runtime} s"
            ));
        }
        prev_runtime = runtime;
        prev_h = h;
    }

    println!("{out}");
    if let Some(path) = opt(args, "--out") {
        std::fs::write(path, &out).map_err(|e| format!("write {path}: {e}"))?;
    }
    match knee {
        Some(i) => eprintln!("knee: {} per node (last step gaining >5%)", caps[i]),
        None => eprintln!("no knee within the swept range (every step gains >5%)"),
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let app = if flag(args, "--paper") {
        Workload::Gatk4.paper_app()
    } else {
        Workload::Gatk4.scaled_app()
    };
    let engine = parse_engine(args)?;
    eprintln!("calibrating GATK4 on 3 nodes ({} jobs)...", engine.jobs());
    let platform = SimPlatform::new(
        app,
        presets::paper_node(36, HybridConfig::SsdSsd),
        3,
        SparkConf::paper(),
    );
    let model = Calibrator::default()
        .calibrate_with(&platform, "GATK4", &engine)
        .map_err(|e| e.to_string())?
        .model;
    let eval = MemoizedEvaluator::new(CostEvaluator::new(model));
    let best = grid_search_with(&eval, &SearchSpace::paper(), &engine);
    let r1 = eval.evaluate(&r1_reference(10, 16));
    let r2 = eval.evaluate(&r2_reference(10, 16));
    println!("optimum: {} -> {}", best.config, best.cost);
    eprintln!(
        "evaluations: {} distinct, {} served from cache",
        eval.misses(),
        eval.hits()
    );
    println!("R1 (Spark website): {r1}");
    println!("R2 (Cloudera):      {r2}");
    println!(
        "savings: {:.0}% vs R1, {:.0}% vs R2 (paper: 38% / 57% at full scale)",
        (1.0 - best.cost.total() / r1.total()) * 100.0,
        (1.0 - best.cost.total() / r2.total()) * 100.0
    );
    Ok(())
}

fn cmd_phases(args: &[String]) -> Result<(), String> {
    let bw: f64 = parse_num(args, "--bw", 480.0)?;
    let t: f64 = parse_num(args, "--t", 60.0)?;
    let lambda: f64 = parse_num(args, "--lambda", 20.0)?;
    let cores: f64 = parse_num(args, "--cores", 36.0)?;
    let b = break_point(
        doppio::events::Rate::mib_per_sec(bw),
        doppio::events::Rate::mib_per_sec(t),
    );
    let big_b = turning_point(lambda, b);
    println!("BW = {bw} MiB/s, T = {t} MiB/s, λ = {lambda}");
    println!("break point   b = BW/T  = {b:.1} cores");
    println!("turning point B = λ·b   = {big_b:.1} cores");
    if flag(args, "--sweep") {
        let engine = parse_engine(args)?;
        let ps: Vec<f64> = (1..=cores.max(1.0) as u32).map(f64::from).collect();
        let phases = engine.par_map(&ps, |&p| classify(p, b, lambda));
        for (p, phase) in ps.iter().zip(&phases) {
            println!("  P = {p:>4}: {phase}");
        }
    } else {
        println!("P = {cores}: {}", classify(cores, b, lambda));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let workers: usize = parse_num(args, "--workers", 2)?;
    let queue_bound: usize = parse_num(args, "--queue-bound", 64)?;
    let deadline_ms: u64 = parse_num(args, "--deadline-ms", 0)?;
    let shards: usize = parse_num(args, "--shards", 0)?;
    if shards > 0 {
        return cmd_serve_sharded(args, shards, workers, queue_bound, deadline_ms);
    }
    let defaults = doppio::serve::ServeConfig::default();
    let cfg = doppio::serve::ServeConfig {
        addr: opt(args, "--addr").unwrap_or("127.0.0.1:7099").to_string(),
        workers,
        queue_bound,
        cache_capacity: parse_num(args, "--cache", 4096)?,
        default_deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        allow_shutdown: flag(args, "--allow-shutdown"),
        max_line_bytes: parse_num(args, "--max-line-bytes", defaults.max_line_bytes)?,
        read_timeout_ms: parse_num(args, "--idle-timeout-ms", defaults.read_timeout_ms)?,
        snapshot_dir: opt(args, "--snapshot-dir").map(std::path::PathBuf::from),
        ..Default::default()
    };
    let handle = doppio::serve::start(cfg).map_err(|e| format!("bind: {e}"))?;
    let bound = handle.addr();
    if let Some(path) = opt(args, "--port-file") {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("write {path}: {e}"))?;
    }
    eprintln!("doppio-serve listening on {bound} ({workers} workers, queue bound {queue_bound})");
    // Parks until a remote shutdown drains the server (or forever without
    // --allow-shutdown; terminate the process to stop it).
    handle.wait();
    eprintln!("doppio-serve drained");
    Ok(())
}

/// `serve --shards N`: launch N shard processes (each a plain
/// single-process `doppio serve` child), put the consistent-hash router
/// on the public address, and park until the tier drains.
fn cmd_serve_sharded(
    args: &[String],
    shards: usize,
    workers: usize,
    queue_bound: usize,
    deadline_ms: u64,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut tier = doppio::serve::spawn_tier(&doppio::serve::TierSpec {
        exe,
        shards,
        workers_per_shard: workers,
        cache_capacity: parse_num(args, "--cache", 4096)?,
        queue_bound,
        snapshot_dir: opt(args, "--snapshot-dir").map(std::path::PathBuf::from),
        pid_dir: opt(args, "--pid-dir").map(std::path::PathBuf::from),
        ..Default::default()
    })
    .map_err(|e| format!("spawn shard tier: {e}"))?;

    let defaults = doppio::serve::RouterConfig::default();
    let router = doppio::serve::start_router(doppio::serve::RouterConfig {
        addr: opt(args, "--addr").unwrap_or("127.0.0.1:7099").to_string(),
        shards: tier.addrs(),
        vnodes: parse_num(args, "--vnodes", defaults.vnodes)?,
        hot_threshold: parse_num(args, "--hot-threshold", defaults.hot_threshold)?,
        hot_replicas: parse_num(args, "--hot-replicas", defaults.hot_replicas)?,
        // Forward workers do blocking shard round-trips; two per shard
        // keeps every shard's worker pool saturable without a flag.
        workers: (shards * 2).clamp(defaults.workers, 16),
        queue_bound,
        default_deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        allow_shutdown: flag(args, "--allow-shutdown"),
        max_line_bytes: parse_num(args, "--max-line-bytes", defaults.max_line_bytes)?,
        read_timeout_ms: parse_num(args, "--idle-timeout-ms", defaults.read_timeout_ms)?,
        ..Default::default()
    })
    .map_err(|e| format!("bind router: {e}"))?;
    // Self-healing: the supervisor restarts crashed shards and feeds
    // lifecycle events to the router, which drops a dead shard from the
    // active ring and re-admits it through the warm-up probe gate.
    let controller = router.controller();
    tier.supervise(doppio::serve::SupervisorConfig::default(), move |ev| {
        controller.on_shard_event(&ev)
    });
    let bound = router.addr();
    if let Some(path) = opt(args, "--port-file") {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("write {path}: {e}"))?;
    }
    eprintln!(
        "doppio-serve router on {bound} over {shards} shard(s): {:?}",
        tier.addrs()
    );
    // Parks until a remote shutdown fans out to the shards and drains the
    // router; dropping the tier afterwards reaps the (already exited)
    // children.
    router.wait();
    drop(tier);
    eprintln!("doppio-serve tier drained");
    Ok(())
}

/// Polls a serve endpoint's `health` verb. Without `--wait-ms` this is
/// one shot: ask, print the reply, exit by readiness. With it, keep
/// polling until the server reports ready or the wait expires — the CI
/// startup gate that replaces sleeping.
fn cmd_health(args: &[String]) -> Result<(), String> {
    use std::time::{Duration, Instant};

    let addr = opt(args, "--addr").unwrap_or("127.0.0.1:7099").to_string();
    let wait_ms: u64 = parse_num(args, "--wait-ms", 0)?;
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let ccfg = doppio::serve::ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(2_000)),
        write_timeout: Some(Duration::from_millis(2_000)),
    };
    loop {
        let attempt = doppio::serve::Client::connect_with(&addr, &ccfg)
            .map_err(|e| format!("connect {addr}: {e}"))
            .and_then(|mut c| {
                c.call(doppio::serve::Request::Health, None)
                    .map_err(|e| format!("health call: {e}"))
            });
        match attempt {
            Ok(reply) if reply.ok => {
                let ready = reply
                    .result
                    .as_ref()
                    .and_then(|r| r.get("ready"))
                    .and_then(doppio::engine::json::Value::as_bool)
                    .unwrap_or(false);
                if ready {
                    println!("{}", reply.raw);
                    return Ok(());
                }
                if Instant::now() >= deadline {
                    println!("{}", reply.raw);
                    return Err("server answered but reports not ready".into());
                }
            }
            Ok(reply) => {
                if Instant::now() >= deadline {
                    return Err(format!(
                        "health request failed: {}",
                        reply.error_code.unwrap_or_default()
                    ));
                }
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use doppio::serve::loadgen::{self, LoadgenConfig};

    // Auxiliary modes first: both are plumbing other processes drive
    // (`--procs` parents, reactor capacity tests), not measurements.
    let hold: usize = parse_num(args, "--hold", 0)?;
    if hold > 0 {
        return loadgen_hold(args, hold);
    }
    if flag(args, "--hot-worker") {
        return loadgen_hot_worker(args);
    }
    if let Some(path) = opt(args, "--observe-log") {
        return loadgen_observe_replay(args, path);
    }

    let smoke = flag(args, "--smoke");
    let mut cfg = LoadgenConfig::default();
    if smoke {
        cfg = cfg.smoke();
    }
    cfg.connections = parse_num(args, "--connections", cfg.connections)?;
    cfg.cold_requests = parse_num(args, "--requests", cfg.cold_requests)?;
    cfg.hot_repeats = parse_num(args, "--repeats", cfg.hot_repeats)?;
    cfg.chaos = match opt(args, "--chaos") {
        None => None,
        Some(token) => Some(doppio::serve::ChaosProfile::parse(token)?),
    };
    cfg.chaos_seed = parse_num(args, "--chaos-seed", cfg.chaos_seed)?;
    cfg.connect_timeout_ms = parse_num(args, "--connect-timeout-ms", cfg.connect_timeout_ms)?;
    cfg.read_timeout_ms = parse_num(args, "--read-timeout-ms", cfg.read_timeout_ms)?;
    cfg.kill_after = parse_num(args, "--kill-after", cfg.kill_after)?;
    cfg.kill_pid_file = opt(args, "--kill-pid-file").map(std::path::PathBuf::from);
    cfg.expect_restarts = parse_num(args, "--expect-restarts", cfg.expect_restarts)?;

    // Without --addr, measure against a throwaway in-process server.
    let (addr, local) = match opt(args, "--addr") {
        Some(a) => (a.to_string(), None),
        None => {
            let handle = doppio::serve::start(doppio::serve::ServeConfig {
                workers: 4,
                ..Default::default()
            })
            .map_err(|e| format!("bind: {e}"))?;
            (handle.addr().to_string(), Some(handle))
        }
    };
    cfg.addr = addr;

    let mut report = loadgen::run(&cfg)?;

    // `--procs N` (N > 1): rerun the hot phase fanned out over N worker
    // processes, so one generator's thread ceiling cannot cap what the
    // sharded tier can absorb. The single-process run above already
    // warmed every seed the workers replay.
    let procs: usize = parse_num(args, "--procs", 1)?;
    if procs > 1 {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mp = loadgen::run_hot_multiproc(&loadgen::MultiProcSpec {
            exe,
            addr: cfg.addr.clone(),
            procs,
            connections: cfg.connections,
            distinct: cfg.cold_requests,
            repeats: cfg.hot_repeats,
            connect_timeout_ms: cfg.connect_timeout_ms,
            read_timeout_ms: cfg.read_timeout_ms,
        })?;
        report.put_obj("hot_multiproc", mp);
    }

    let out = std::path::PathBuf::from(opt(args, "--out").unwrap_or(if smoke {
        "target/BENCH_serve_throughput.smoke.json"
    } else {
        "BENCH_serve_throughput.json"
    }));
    loadgen::write_report(&out, &report)?;

    // The report is the artifact; echo the headline numbers.
    let v = doppio::engine::json::parse(&report.render())
        .map_err(|e| format!("report did not round-trip: {e}"))?;
    let speedup = v
        .get("speedup_hot_vs_cold")
        .and_then(doppio::engine::json::Value::as_f64)
        .unwrap_or(0.0);
    if let Some(phases) = v
        .get("phases")
        .and_then(doppio::engine::json::Value::as_arr)
    {
        for p in phases {
            let f = |k: &str| p.get(k).and_then(doppio::engine::json::Value::as_f64);
            println!(
                "{:<5} {:>4.0} reqs  {:>8.1} req/s  p50 {:>7.2} ms  p99 {:>7.2} ms",
                p.get("phase")
                    .and_then(doppio::engine::json::Value::as_str)
                    .unwrap_or("?"),
                f("requests").unwrap_or(0.0),
                f("reqs_per_sec").unwrap_or(0.0),
                f("p50_ms").unwrap_or(0.0),
                f("p99_ms").unwrap_or(0.0),
            );
        }
    }
    println!("hot-over-cold speedup: {speedup:.1}x");
    if let Some(mp) = v.get("hot_multiproc") {
        let f = |k: &str| mp.get(k).and_then(doppio::engine::json::Value::as_f64);
        let n = |k: &str| {
            mp.get(k)
                .and_then(doppio::engine::json::Value::as_u64)
                .unwrap_or(0)
        };
        println!(
            "hot x{} procs: {:>5} reqs  {:>8.1} req/s  p50 {:>7.2} ms  p99 {:>7.2} ms  ({} errors)",
            n("procs"),
            n("requests"),
            f("reqs_per_sec").unwrap_or(0.0),
            f("p50_ms").unwrap_or(0.0),
            f("p99_ms").unwrap_or(0.0),
            n("errors"),
        );
    }
    if let Some(chaos) = v.get("chaos") {
        let n = |k: &str| {
            chaos
                .get(k)
                .and_then(doppio::engine::json::Value::as_u64)
                .unwrap_or(0)
        };
        println!(
            "chaos [{}]: {}/{} ok, {} server err, {} client err, {} lost; {} retries, {} reconnects, breaker {}x open / {}x closed",
            chaos
                .get("profile")
                .and_then(doppio::engine::json::Value::as_str)
                .unwrap_or("?"),
            n("succeeded"),
            n("requests"),
            n("server_errors"),
            n("client_errors"),
            n("lost_replies"),
            n("retries"),
            n("reconnects"),
            n("breaker_opened"),
            n("breaker_closed"),
        );
    }
    println!("report: {}", out.display());

    if flag(args, "--shutdown-after") {
        let mut client = doppio::serve::Client::connect(&cfg.addr)
            .map_err(|e| format!("shutdown connect: {e}"))?;
        let reply = client
            .call(doppio::serve::Request::Shutdown, None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if !reply.ok {
            return Err(format!(
                "server refused shutdown: {}",
                reply.error_code.unwrap_or_default()
            ));
        }
    }
    if let Some(handle) = local {
        handle.join();
    }
    Ok(())
}

/// `loadgen --observe-log FILE`: the recalibration replay. Every
/// observation in the `doppio-observe/v1` NDJSON file is predicted
/// analytically, fed to the server's `observe` verb, then re-predicted
/// with the corrector; the analytic-vs-corrected MAPE comparison is
/// written to a strictly parsed-back report. With `--smoke` the replay
/// additionally fails unless the corrected error beats the analytic one
/// — the CI gate that keeps the corrector earning its keep.
fn loadgen_observe_replay(args: &[String], path: &str) -> Result<(), String> {
    use doppio::engine::json::{self, Object, Value};
    use doppio::learn::{mape, RunObservation};
    use doppio::serve::protocol::{parse_workload as wire_workload, PredictSpec};
    use doppio::serve::{Client, ClientConfig, Reply, Request};

    let smoke = flag(args, "--smoke");
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut observations: Vec<RunObservation> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        observations
            .push(RunObservation::parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
    }
    if observations.is_empty() {
        return Err(format!("{path} holds no observations"));
    }

    // Without --addr, replay against a throwaway in-process server.
    let (addr, local) = match opt(args, "--addr") {
        Some(a) => (a.to_string(), None),
        None => {
            let handle = doppio::serve::start(doppio::serve::ServeConfig {
                workers: 4,
                ..Default::default()
            })
            .map_err(|e| format!("bind: {e}"))?;
            (handle.addr().to_string(), Some(handle))
        }
    };

    // First predict per environment calibrates the base model server-side,
    // so the read timeout defaults far beyond the interactive ones.
    let ms = |v: u64| (v > 0).then(|| std::time::Duration::from_millis(v));
    let ccfg = ClientConfig {
        connect_timeout: ms(parse_num(args, "--connect-timeout-ms", 2_000)?),
        read_timeout: ms(parse_num(args, "--read-timeout-ms", 300_000)?),
        write_timeout: ms(parse_num(args, "--read-timeout-ms", 300_000)?),
    };
    let mut client =
        Client::connect_with(&addr, &ccfg).map_err(|e| format!("connect {addr}: {e}"))?;

    let spec = |o: &RunObservation, corrected: bool| -> Result<Request, String> {
        let workload = wire_workload(&o.workload)
            .ok_or_else(|| format!("observation names unknown workload '{}'", o.workload))?;
        Ok(Request::Predict(PredictSpec {
            workload,
            nodes: o.nodes,
            cores: o.cores,
            config: o.config,
            paper: o.paper,
            profile_nodes: 3,
            corrected,
        }))
    };
    let call = |client: &mut Client, req: Request, what: &str| -> Result<Reply, String> {
        let reply = client.call(req, None).map_err(|e| format!("{what}: {e}"))?;
        if !reply.ok {
            return Err(format!(
                "{what} failed: {}",
                reply.error_code.unwrap_or_default()
            ));
        }
        Ok(reply)
    };
    let num = |reply: &Reply, key: &str, what: &str| -> Result<f64, String> {
        reply
            .result
            .as_ref()
            .and_then(|r| r.get(key))
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what} reply is missing {key}"))
    };

    // Phase 1: the static model's view of every observed run.
    let mut analytic = Vec::new();
    for o in &observations {
        let reply = call(&mut client, spec(o, false)?, "analytic predict")?;
        analytic.push(num(&reply, "total_model_secs", "analytic predict")?);
    }
    // Phase 2: replay the log through the observe verb.
    let mut corrector_version = 0u64;
    for o in &observations {
        let reply = call(&mut client, Request::Observe(o.clone()), "observe")?;
        corrector_version = num(&reply, "corrector_version", "observe")? as u64;
    }
    // Phase 3: re-predict with the fitted corrector.
    let mut corrected = Vec::new();
    for o in &observations {
        let reply = call(&mut client, spec(o, true)?, "corrected predict")?;
        corrected.push(num(&reply, "total_corrected_secs", "corrected predict")?);
    }

    let observed: Vec<f64> = observations
        .iter()
        .map(RunObservation::total_secs)
        .collect();
    let pairs = |preds: &[f64]| -> Vec<(f64, f64)> {
        preds
            .iter()
            .copied()
            .zip(observed.iter().copied())
            .collect()
    };
    let analytic_mape = mape(&pairs(&analytic));
    let corrected_mape = mape(&pairs(&corrected));

    let mut report = Object::new();
    report.put_str("schema", "doppio-learn-replay/v1");
    report.put_str("log", path);
    report.put_u64("observations", observations.len() as u64);
    report.put_u64("corrector_version", corrector_version);
    report.put_f64("analytic_mape_pct", analytic_mape);
    report.put_f64("corrected_mape_pct", corrected_mape);
    let out = std::path::PathBuf::from(opt(args, "--out").unwrap_or(if smoke {
        "target/LEARN_replay.smoke.json"
    } else {
        "LEARN_replay.json"
    }));
    std::fs::write(&out, report.render()).map_err(|e| format!("write {}: {e}", out.display()))?;

    // Strict parse-back: the artifact must round-trip with sane numbers
    // before the replay reports success.
    let back = std::fs::read_to_string(&out).map_err(|e| format!("read {}: {e}", out.display()))?;
    let v = json::parse(&back).map_err(|e| format!("parse-back {}: {e}", out.display()))?;
    if v.get("schema").and_then(Value::as_str) != Some("doppio-learn-replay/v1") {
        return Err("parse-back: wrong or missing schema".into());
    }
    for key in ["analytic_mape_pct", "corrected_mape_pct"] {
        let m = v
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("parse-back: missing {key}"))?;
        if !m.is_finite() || m < 0.0 {
            return Err(format!("parse-back: {key} = {m} is not a sane error"));
        }
    }

    println!(
        "observe replay: {} observation(s), analytic MAPE {:.1}% -> corrected {:.1}% (corrector v{})",
        observations.len(),
        analytic_mape,
        corrected_mape,
        corrector_version
    );
    println!("report: {}", out.display());
    if smoke && corrected_mape >= analytic_mape {
        return Err(format!(
            "corrected MAPE {corrected_mape:.2}% did not beat analytic {analytic_mape:.2}%"
        ));
    }

    if flag(args, "--shutdown-after") {
        let reply = client
            .call(Request::Shutdown, None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if !reply.ok {
            return Err(format!(
                "server refused shutdown: {}",
                reply.error_code.unwrap_or_default()
            ));
        }
    }
    if let Some(handle) = local {
        handle.join();
    }
    Ok(())
}

/// `loadgen --hold N`: opens N idle connections to `--addr`, prints
/// `held N` once all are up, then parks until stdin closes. Capacity
/// tests use a few of these as side-car processes so one process's fd
/// limit does not cap how many connections the reactor must carry.
fn loadgen_hold(args: &[String], hold: usize) -> Result<(), String> {
    let addr = opt(args, "--addr").ok_or("--hold requires --addr")?;
    let mut conns = Vec::with_capacity(hold);
    for i in 0..hold {
        conns.push(
            std::net::TcpStream::connect(addr).map_err(|e| format!("hold connect {i}: {e}"))?,
        );
    }
    println!("held {hold}");
    use std::io::{Read as _, Write as _};
    std::io::stdout().flush().ok();
    let mut sink = Vec::new();
    std::io::stdin()
        .read_to_end(&mut sink)
        .map_err(|e| format!("hold stdin: {e}"))?;
    drop(conns);
    Ok(())
}

/// `loadgen --hot-worker`: one child of the multi-process hot phase.
/// Replays `--requests` distinct pre-warmed seeds `--repeats` times over
/// `--connections` closed loops against `--addr`, then prints a single
/// `doppio-loadgen-worker/v1` summary line for the parent to merge.
fn loadgen_hot_worker(args: &[String]) -> Result<(), String> {
    use doppio::serve::loadgen::{hot_worker, LoadgenConfig};
    let defaults = LoadgenConfig::default();
    let addr = opt(args, "--addr").ok_or("--hot-worker requires --addr")?;
    let connections = parse_num(args, "--connections", defaults.connections)?;
    let distinct = parse_num(args, "--requests", defaults.cold_requests)?;
    let repeats = parse_num(args, "--repeats", defaults.hot_repeats)?;
    let ms = |v: u64| (v > 0).then(|| std::time::Duration::from_millis(v));
    let connect_ms = parse_num(args, "--connect-timeout-ms", defaults.connect_timeout_ms)?;
    let read_ms = parse_num(args, "--read-timeout-ms", defaults.read_timeout_ms)?;
    let ccfg = doppio::serve::ClientConfig {
        connect_timeout: ms(connect_ms),
        read_timeout: ms(read_ms),
        write_timeout: ms(read_ms),
    };
    // The seed base is fixed at the loadgen default so every worker
    // replays exactly the set the parent's cold phase warmed.
    let summary = hot_worker(
        addr,
        connections,
        distinct,
        repeats,
        defaults.base_seed,
        &ccfg,
    )?;
    println!("{}", summary.render_line());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn option_parsing() {
        let a = argv("--nodes 5 --config 2hdd --paper");
        assert_eq!(opt(&a, "--nodes"), Some("5"));
        assert_eq!(opt(&a, "--missing"), None);
        assert!(flag(&a, "--paper"));
        assert!(!flag(&a, "--quiet"));
        assert_eq!(parse_num::<usize>(&a, "--nodes", 3).unwrap(), 5);
        assert_eq!(parse_num::<usize>(&a, "--cores", 36).unwrap(), 36);
        assert!(parse_num::<usize>(&a, "--config", 0).is_err());
    }

    #[test]
    fn config_names() {
        assert_eq!(parse_config("2ssd").unwrap(), HybridConfig::SsdSsd);
        assert_eq!(parse_config("2hdd").unwrap(), HybridConfig::HddHdd);
        assert_eq!(parse_config("hdd-ssd").unwrap(), HybridConfig::HddSsd);
        assert_eq!(parse_config("ssd-hdd").unwrap(), HybridConfig::SsdHdd);
        assert!(parse_config("floppy").is_err());
    }

    #[test]
    fn workload_names() {
        assert_eq!(parse_workload("gatk4").unwrap(), Workload::Gatk4);
        assert_eq!(parse_workload("pr").unwrap(), Workload::PageRank);
        assert_eq!(parse_workload("ts").unwrap(), Workload::Terasort);
        assert!(parse_workload("spark").is_err());
    }

    #[test]
    fn phases_command_runs() {
        assert!(cmd_phases(&argv("--bw 120 --t 60 --lambda 4")).is_ok());
        assert!(cmd_phases(&argv(
            "--bw 120 --t 60 --lambda 4 --cores 8 --sweep --jobs 2"
        ))
        .is_ok());
        assert!(cmd_list().is_ok());
    }

    #[test]
    fn fault_profile_parsing() {
        assert_eq!(parse_fault_profile(&argv("")).unwrap(), None);
        assert_eq!(
            parse_fault_profile(&argv("--inject executor-loss")).unwrap(),
            Some(FaultProfile::ExecutorLoss)
        );
        assert_eq!(
            parse_fault_profile(&argv("--inject chaos --fault-seed 3")).unwrap(),
            Some(FaultProfile::Chaos)
        );
        assert!(parse_fault_profile(&argv("--inject gremlins")).is_err());
        // Every profile listed in USAGE round-trips through the parser.
        for p in FaultProfile::ALL {
            assert!(USAGE.contains(p.name()), "USAGE lists '{}'", p.name());
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn usage_strings_agree_on_simulate_flags() {
        // The module header (line 5) and the USAGE const drifted once;
        // keep every simulate flag present in both.
        for flag in [
            "--workload",
            "--nodes",
            "--cores",
            "--config",
            "--paper",
            "--seed",
            "--runs",
            "--jobs",
            "--batch",
            "--inject",
            "--fault-seed",
            "--storage",
            "--emit-observation",
        ] {
            assert!(USAGE.contains(flag), "USAGE lists {flag}");
        }
    }

    #[test]
    fn usage_lists_every_recalibration_flag() {
        // The online-recalibration surface: predict's corrected columns,
        // the observation emitter, the loadgen replay, and the corrector
        // names `doppio list` prints.
        for flag in [
            "--corrected",
            "--observe-log",
            "--emit-observation",
            "--profile-nodes",
            "correctors",
        ] {
            assert!(USAGE.contains(flag), "USAGE lists {flag}");
        }
        for (name, _) in doppio::learn::CORRECTOR_NAMES {
            assert!(USAGE.contains(name), "USAGE lists corrector '{name}'");
        }
    }

    #[test]
    fn storage_profile_parsing() {
        assert_eq!(parse_storage(&argv("")).unwrap(), StorageProfile::Local);
        assert_eq!(
            parse_storage(&argv("--storage lustre")).unwrap(),
            StorageProfile::lustre()
        );
        assert!(parse_storage(&argv("--storage floppy")).is_err());
        // Every profile listed by `doppio list` round-trips through the
        // parser and appears in USAGE.
        for &(name, _) in doppio::cluster::PROFILE_NAMES {
            assert!(USAGE.contains(name), "USAGE lists '{name}'");
            let p = StorageProfile::parse(name).expect("listed profile parses");
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn usage_lists_every_whatif_flag() {
        for flag in [
            "doppio whatif cache-sweep",
            "--working-set-gib",
            "--smoke",
            "--out",
        ] {
            assert!(USAGE.contains(flag), "USAGE lists {flag}");
        }
    }

    #[test]
    fn usage_lists_every_serve_and_loadgen_flag() {
        for flag in [
            "doppio serve",
            "--addr",
            "--workers",
            "--queue-bound",
            "--cache",
            "--deadline-ms",
            "--port-file",
            "--allow-shutdown",
            "--max-line-bytes",
            "--idle-timeout-ms",
            "doppio health",
            "--wait-ms",
            "doppio loadgen",
            "--smoke",
            "--connections",
            "--requests",
            "--repeats",
            "--out",
            "--shutdown-after",
            "--chaos",
            "--chaos-seed",
            "--connect-timeout-ms",
            "--read-timeout-ms",
            "--shards",
            "--vnodes",
            "--hot-threshold",
            "--hot-replicas",
            "--procs",
            "--hot-worker",
            "--hold",
            "--observe-log",
            "--snapshot-dir",
            "--pid-dir",
            "--kill-after",
            "--kill-pid-file",
            "--expect-restarts",
        ] {
            assert!(USAGE.contains(flag), "USAGE lists {flag}");
        }
    }

    #[test]
    fn chaos_profiles_listed_in_usage() {
        for p in doppio::serve::ChaosProfile::ALL {
            assert!(USAGE.contains(p.name()), "USAGE lists '{}'", p.name());
            assert_eq!(doppio::serve::ChaosProfile::parse(p.name()), Ok(p));
        }
        assert!(doppio::serve::ChaosProfile::parse("gremlins").is_err());
    }

    #[test]
    fn usage_lists_every_dispatched_command() {
        // Every command the dispatcher in `main` accepts (except help
        // aliases) must be documented.
        for cmd in [
            "doppio fio",
            "doppio simulate",
            "doppio predict",
            "doppio whatif",
            "doppio optimize",
            "doppio phases",
            "doppio serve",
            "doppio health",
            "doppio loadgen",
            "doppio list",
        ] {
            assert!(USAGE.contains(cmd), "USAGE lists {cmd}");
        }
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_engine(&argv("--jobs 3")).unwrap().jobs(), 3);
        assert_eq!(parse_engine(&argv("--jobs 1")).unwrap().jobs(), 1);
        assert!(parse_engine(&argv("--jobs many")).is_err());
        let auto = Engine::auto().jobs();
        assert_eq!(parse_engine(&argv("--jobs 0")).unwrap().jobs(), auto);
        assert_eq!(parse_engine(&argv("")).unwrap().jobs(), auto);
    }
}
