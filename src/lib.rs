//! # Doppio — I/O-aware performance analysis, modeling and optimization for
//! in-memory computing frameworks
//!
//! A from-scratch Rust reproduction of *"Doppio: I/O-Aware Performance
//! Analysis, Modeling and Optimization for In-Memory Computing Framework"*
//! (Zhou et al., ISPASS 2018).
//!
//! This facade crate re-exports every layer of the stack:
//!
//! * [`engine`] — the parallel scenario engine: a deterministic
//!   order-preserving thread pool plus fingerprint-keyed memoization,
//!   shared by the optimizer, the what-if sweeps, the calibrator and the
//!   [`scenario`] batches.
//! * [`events`] — discrete-event kernel and the processor-sharing resource
//!   server that models I/O bandwidth contention.
//! * [`storage`] — HDD/SSD device models with effective-bandwidth-vs-request-
//!   size curves, a fio-like profiler, and iostat-style accounting.
//! * [`cluster`] — node and cluster descriptions, including the paper's
//!   hardware presets (Tables I–III).
//! * [`tiered`] — disaggregated storage profiles (object store, cache
//!   tier, parallel filesystem) selectable per cluster via
//!   [`cluster::ClusterSpec::with_storage`] (DESIGN.md §3.10).
//! * [`dfs`] — an HDFS-like block-based distributed file system simulation.
//! * [`sparksim`] — the Spark-like in-memory computing framework simulator:
//!   RDD lineage, DAG scheduler, sort-based shuffle, memory manager and
//!   pipelined task executor.
//! * [`faults`] — deterministic fault injection (task failures, executor
//!   loss, disk degradation, stragglers) and the Spark-style recovery the
//!   simulator performs: retries, lineage recomputation, speculation.
//! * [`model`] — **the paper's contribution**: the I/O-aware analytical stage
//!   model (Equation 1), the three-phase execution analysis, the four-sample-
//!   run calibrator, and an Ernest-style baseline.
//! * [`workloads`] — GATK4, Logistic Regression, SVM, PageRank, Triangle
//!   Count and Terasort workload definitions with the paper's parameters.
//! * [`cloud`] — Google-Cloud-style pricing and size-dependent virtual-disk
//!   bandwidth, plus the model-driven cost optimizer (Section VI).
//! * [`learn`] — deterministic online recalibration: bounded observation
//!   windows per workload, Equation-1 re-fits and a ridge residual
//!   corrector whose state folds into prediction cache keys
//!   (DESIGN.md §3.11).
//! * [`serve`] — a long-lived model-serving front end: newline-delimited
//!   JSON over TCP with a shared result cache, singleflight deduplication,
//!   bounded admission with load shedding, and a load-generator harness.
//!
//! # Quickstart
//!
//! ```
//! use doppio::cluster::{ClusterSpec, HybridConfig};
//! use doppio::sparksim::Simulation;
//! use doppio::workloads::terasort;
//!
//! // 3 worker nodes in the paper's 2-SSD configuration, 8 cores each.
//! let cluster = ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd);
//! let app = terasort::app(&terasort::Params::scaled_down());
//! let run = Simulation::new(cluster).run(&app).expect("simulation runs");
//! assert!(run.total_time().as_secs() > 0.0);
//! for stage in run.stages() {
//!     println!("{:28} {:>10}", stage.name, stage.duration.to_string());
//! }
//! ```

pub use doppio_cloud as cloud;
pub use doppio_cluster as cluster;
pub use doppio_dfs as dfs;
pub use doppio_engine as engine;
pub use doppio_events as events;
pub use doppio_faults as faults;
pub use doppio_learn as learn;
pub use doppio_model as model;
pub use doppio_serve as serve;
pub use doppio_sparksim as sparksim;
pub use doppio_storage as storage;
pub use doppio_tiered as tiered;
pub use doppio_workloads as workloads;

pub mod scenario;
