//! Cross-crate invariants of the Spark-like substrate itself: stage
//! cutting, shuffle reuse, cache lifecycles, and conservation of data
//! through the DFS and the shuffle.

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::events::Bytes;
use doppio::sparksim::{
    AppBuilder, Cost, IoChannel, ShuffleSpec, Simulation, SparkConf, StageKind, StorageLevel,
};

fn sim() -> Simulation {
    Simulation::with_conf(
        ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd),
        SparkConf::paper().with_cores(8).without_noise(),
    )
}

#[test]
fn chained_shuffles_produce_chained_stages() {
    let mut b = AppBuilder::new("two-hop");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(4));
    let s1 = b.group_by_key(src, "hop1", ShuffleSpec::reducers(64), Cost::ZERO, 1.0);
    let s2 = b.group_by_key(s1, "hop2", ShuffleSpec::reducers(32), Cost::ZERO, 1.0);
    b.count(s2, "result", Cost::ZERO);
    let run = sim().run(&b.build().unwrap()).unwrap();
    let kinds: Vec<(String, StageKind)> = run
        .stages()
        .iter()
        .map(|s| (s.name.clone(), s.kind))
        .collect();
    assert_eq!(
        kinds,
        vec![
            ("hop1".into(), StageKind::ShuffleMap),
            ("hop2".into(), StageKind::ShuffleMap),
            ("result".into(), StageKind::Result),
        ]
    );
    // hop2's map tasks read hop1's shuffle output.
    let hop2 = run.stage("hop2").unwrap();
    assert_eq!(hop2.tasks.count, 64, "one map task per hop1 reducer");
    assert_eq!(
        hop2.channel_bytes(IoChannel::ShuffleRead),
        Bytes::from_gib(4)
    );
    assert_eq!(
        hop2.channel_bytes(IoChannel::ShuffleWrite),
        Bytes::from_gib(4)
    );
}

#[test]
fn shuffle_output_is_reused_across_jobs() {
    let mut b = AppBuilder::new("reuse");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(2));
    let sh = b.group_by_key(src, "shuffle", ShuffleSpec::reducers(32), Cost::ZERO, 1.0);
    for i in 0..3 {
        b.count(sh, format!("job{i}"), Cost::ZERO);
    }
    let run = sim().run(&b.build().unwrap()).unwrap();
    // One map stage total, three result stages.
    let maps = run
        .stages()
        .iter()
        .filter(|s| s.kind == StageKind::ShuffleMap)
        .count();
    assert_eq!(maps, 1, "map stage runs once, later jobs skip it");
    assert_eq!(run.stages().len(), 4);
    // Each result stage re-reads the full shuffle output.
    assert_eq!(
        run.total_channel_bytes(IoChannel::ShuffleRead),
        Bytes::from_gib(6)
    );
}

#[test]
fn cache_cuts_lineage_after_first_materialization() {
    let mut b = AppBuilder::new("cache");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(2));
    let parsed = b.map(src, "parsed", Cost::per_mib(0.01), 1.0);
    b.persist(parsed, StorageLevel::MemoryAndDisk, 2.0);
    b.count(parsed, "first", Cost::ZERO);
    b.count(parsed, "second", Cost::ZERO);
    b.count(parsed, "third", Cost::ZERO);
    let run = sim().run(&b.build().unwrap()).unwrap();
    assert_eq!(
        run.stage("first")
            .unwrap()
            .channel_bytes(IoChannel::HdfsRead),
        Bytes::from_gib(2)
    );
    for later in ["second", "third"] {
        assert_eq!(
            run.stage(later).unwrap().channel_bytes(IoChannel::HdfsRead),
            Bytes::ZERO,
            "{later} reads from cache"
        );
    }
}

#[test]
fn replication_amplifies_writes_not_reads() {
    let mut b = AppBuilder::new("repl");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(2));
    b.save_as_hadoop_file(src, "copy", "/out");
    let run = sim().run(&b.build().unwrap()).unwrap();
    let s = run.stage("copy").unwrap();
    assert_eq!(s.channel_bytes(IoChannel::HdfsRead), Bytes::from_gib(2));
    assert_eq!(
        s.channel_bytes(IoChannel::HdfsWrite),
        Bytes::from_gib(4),
        "x2 replication"
    );
    // Exactly one replica crosses the network.
    assert_eq!(s.channel_bytes(IoChannel::NetIn), Bytes::from_gib(2));
}

#[test]
fn union_concatenates_partitions() {
    let mut b = AppBuilder::new("union");
    let a = b.hdfs_source("a", "/a", Bytes::from_gib(1)); // 8 blocks
    let c = b.hdfs_source("c", "/c", Bytes::from_gib(2)); // 16 blocks
    let u = b.union(&[a, c], "u");
    b.count(u, "scan", Cost::ZERO);
    let run = sim().run(&b.build().unwrap()).unwrap();
    assert_eq!(run.stage("scan").unwrap().tasks.count, 24);
    assert_eq!(
        run.stage("scan")
            .unwrap()
            .channel_bytes(IoChannel::HdfsRead),
        Bytes::from_gib(3)
    );
}

#[test]
fn missing_input_is_a_planning_error() {
    // Two writes to the same output path must fail on the second job.
    let mut b = AppBuilder::new("dup");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(1));
    b.save_as_hadoop_file(src, "w1", "/same");
    b.save_as_hadoop_file(src, "w2", "/same");
    let err = sim().run(&b.build().unwrap()).unwrap_err();
    assert!(err.to_string().contains("/same"), "error: {err}");
}
