//! Reactor capacity: one epoll thread carries ten thousand concurrent
//! idle connections.
//!
//! This is the load shape the thread-per-connection server could not
//! survive — 10k sockets meant 10k stacks. The reactor registers each
//! accepted socket with epoll and spends zero resources on it until it
//! becomes readable, so the process thread count must stay exactly where
//! it was before the herd arrived, and a live request threaded through
//! the idle mass must still be served promptly.
//!
//! Topology: the server runs in-process (so `/proc/self/status` counts
//! its threads and this process's fd budget carries the ~10k accepted
//! sockets), while the *initiating* sockets are spread over four child
//! `doppio loadgen --hold` processes so no single process needs 20k fds.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use doppio::engine::json::Value;
use doppio::serve::{start, Client, Request, ServeConfig};

const HOLDERS: usize = 4;
const CONNS_PER_HOLDER: usize = 2500;

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// Cumulative accepted-connection count from the server's own stats.
fn accepted(client: &mut Client) -> u64 {
    let reply = client
        .call(Request::Stats, Some(5_000))
        .expect("stats among idle herd");
    assert!(reply.ok, "stats failed: {:?}", reply.error_message);
    reply
        .result
        .as_ref()
        .and_then(|v| v.get("connections"))
        .and_then(Value::as_u64)
        .expect("stats carries 'connections'")
}

#[test]
fn reactor_holds_ten_thousand_idle_connections_without_growing_threads() {
    let handle = start(ServeConfig {
        workers: 2,
        // The idle reaper must be off: held connections are *supposed*
        // to sit silent for the whole test.
        read_timeout_ms: 0,
        write_timeout_ms: 0,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Baseline after the server is fully up: reactor + workers.
    let before = thread_count();

    let mut holders: Vec<Child> = (0..HOLDERS)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_doppio"))
                .args([
                    "loadgen",
                    "--hold",
                    &CONNS_PER_HOLDER.to_string(),
                    "--addr",
                    &addr,
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn holder {i}: {e}"))
        })
        .collect();

    // Each holder prints `held N` only once all its sockets are open.
    for (i, holder) in holders.iter_mut().enumerate() {
        let stdout = holder.stdout.as_mut().expect("holder stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("holder {i} handshake: {e}"));
        assert_eq!(
            line.trim(),
            format!("held {CONNS_PER_HOLDER}"),
            "holder {i} must report its full complement"
        );
    }

    // A connect() returning in the holder proves the kernel completed the
    // handshake, not that the reactor drained its accept queue; poll the
    // server's accept counter until all 10k are registered.
    let mut client = Client::connect(handle.addr()).expect("client connects among the herd");
    let want = (HOLDERS * CONNS_PER_HOLDER) as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if accepted(&mut client) >= want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reactor did not register {want} connections in time"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The whole herd is epoll state, not threads.
    let during = thread_count();
    assert_eq!(
        during, before,
        "{want} idle connections must not change the thread count ({before} -> {during})"
    );

    // And the reactor still *works*: a live request threaded through ten
    // thousand idle registrations gets a prompt, correct reply.
    let reply = client
        .call(Request::Health, Some(5_000))
        .expect("health served among the idle herd");
    assert!(reply.ok, "health failed: {:?}", reply.error_message);

    // Closing stdin is the release signal; every holder exits cleanly.
    for holder in &mut holders {
        drop(holder.stdin.take());
    }
    for (i, mut holder) in holders.into_iter().enumerate() {
        let status = holder
            .wait()
            .unwrap_or_else(|e| panic!("wait holder {i}: {e}"));
        assert!(status.success(), "holder {i} exited with {status}");
    }

    drop(client);
    handle.shutdown();
    handle.join();
}
