//! Online recalibration must not cost the serve tier its determinism.
//!
//! Three promises, checked across topologies (one worker, four workers,
//! and a two-shard router):
//!
//! 1. The same observation stream produces the same corrector — corrected
//!    predict payloads are byte-identical everywhere.
//! 2. Uncorrected predictions are byte-unchanged by ingestion: the legacy
//!    surface never notices the learner exists.
//! 3. `stats` agrees on `observations` and `corrector_version` whatever
//!    the topology (the router sums its shards).

use doppio::cluster::HybridConfig;
use doppio::learn::RunObservation;
use doppio::serve::{start, start_router, Client, PredictSpec, Request, RouterConfig, ServeConfig};
use doppio::workloads::Workload;

/// The committed slow-disk observation log (same file CI replays).
fn observations() -> Vec<RunObservation> {
    include_str!("fixtures/observations_slowdisk.ndjson")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| RunObservation::parse_line(l).expect("fixture line parses"))
        .collect()
}

/// The prediction environments the fixture exercises.
fn predict_specs(corrected: bool) -> Vec<PredictSpec> {
    [2usize, 3]
        .into_iter()
        .map(|nodes| PredictSpec {
            workload: Workload::Terasort,
            nodes,
            cores: 8,
            config: HybridConfig::HddHdd,
            paper: false,
            profile_nodes: 3,
            corrected,
        })
        .collect()
}

/// The reply's rendered result payload — the server's final field, so the
/// bytes after `"result": ` (minus the envelope's closing brace) are the
/// evaluation verbatim.
fn payload(raw: &str) -> &str {
    let (_, after) = raw
        .split_once("\"result\": ")
        .expect("ok reply carries a result");
    &after[..after.len() - 1]
}

/// What one topology produced: payload bytes and learner counters.
struct Outcome {
    uncorrected: Vec<String>,
    corrected: Vec<String>,
    observations: u64,
    corrector_version: u64,
}

/// Runs the full script against one endpoint: predict, ingest the stream,
/// re-predict uncorrected (must be byte-unchanged), predict corrected,
/// read stats.
fn drive(addr: std::net::SocketAddr, label: &str) -> Outcome {
    let mut client = Client::connect(addr).expect("client connects");

    let uncorrected: Vec<String> = predict_specs(false)
        .into_iter()
        .map(|spec| {
            let reply = client
                .call(Request::Predict(spec), None)
                .expect("uncorrected predict");
            assert!(
                reply.ok,
                "{label}: predict failed: {:?}",
                reply.error_message
            );
            payload(&reply.raw).to_string()
        })
        .collect();

    for obs in observations() {
        let reply = client
            .call(Request::Observe(obs), None)
            .expect("observe reply");
        assert!(
            reply.ok,
            "{label}: observe failed: {:?}",
            reply.error_message
        );
    }

    // Ingestion must not move a single byte of the uncorrected surface.
    for (spec, before) in predict_specs(false).into_iter().zip(&uncorrected) {
        let reply = client
            .call(Request::Predict(spec), None)
            .expect("uncorrected predict after ingest");
        assert!(reply.ok);
        assert_eq!(
            payload(&reply.raw),
            before,
            "{label}: uncorrected prediction changed after ingestion"
        );
    }

    let corrected: Vec<String> = predict_specs(true)
        .into_iter()
        .map(|spec| {
            let reply = client
                .call(Request::Predict(spec), None)
                .expect("corrected predict");
            assert!(
                reply.ok,
                "{label}: corrected predict failed: {:?}",
                reply.error_message
            );
            let p = payload(&reply.raw);
            assert!(
                p.contains("\"total_corrected_secs\""),
                "{label}: corrected payload carries the corrected total: {p}"
            );
            p.to_string()
        })
        .collect();

    let stats = client.call(Request::Stats, None).expect("stats reply");
    assert!(stats.ok);
    let counter = |key: &str| {
        stats
            .result
            .as_ref()
            .and_then(|r| r.get(key))
            .and_then(doppio::engine::json::Value::as_u64)
            .unwrap_or_else(|| panic!("{label}: stats is missing {key}"))
    };
    Outcome {
        uncorrected,
        corrected,
        observations: counter("observations"),
        corrector_version: counter("corrector_version"),
    }
}

#[test]
fn corrected_predictions_are_identical_across_topologies() {
    let n_obs = observations().len() as u64;

    // Topology A: one worker, fully serialized.
    let one = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let a = drive(one.addr(), "1-worker");
    one.join();

    // Topology B: four workers racing over queue, cache and singleflight.
    let four = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let b = drive(four.addr(), "4-worker");
    four.join();

    // Topology C: two shards behind the consistent-hash router; observes
    // and corrected predicts pin to the workload's owner shard.
    let shards: Vec<_> = (0..2)
        .map(|_| {
            start(ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            })
            .expect("shard starts")
        })
        .collect();
    let router = start_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.addr()).collect(),
        ..RouterConfig::default()
    })
    .expect("router starts");
    let c = drive(router.addr(), "2-shard router");
    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }

    for (label, other) in [("4-worker", &b), ("2-shard router", &c)] {
        assert_eq!(
            a.uncorrected, other.uncorrected,
            "uncorrected payload bytes diverge between 1-worker and {label}"
        );
        assert_eq!(
            a.corrected, other.corrected,
            "corrected payload bytes diverge between 1-worker and {label}"
        );
    }
    for (label, o) in [("1-worker", &a), ("4-worker", &b), ("2-shard router", &c)] {
        assert_eq!(o.observations, n_obs, "{label}: every observation counted");
        assert_eq!(
            o.corrector_version, n_obs,
            "{label}: one corrector fit per sequential ingest"
        );
    }
}
