//! Golden-trace regression suite: per-stage simulator metrics for GATK4 and
//! Terasort under a fixed seed, snapshotted into a checked-in fixture.
//!
//! Any change to the discrete-event kernel, the shuffle path, the memory
//! manager or the RNG stream shows up here as a field-level diff instead of
//! a mysterious downstream accuracy shift. Timing fields are stored as f64
//! *bit patterns*, so the comparison is exact — a last-ulp drift fails.
//!
//! To re-bless after an intentional simulator change:
//!
//! ```text
//! DOPPIO_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::sparksim::{IoChannel, Simulation, SparkConf};
use doppio::workloads::Workload;

const SEED: u64 = 42;
const FIXTURE: &str = "tests/fixtures/golden_trace.tsv";

const READ_CHANNELS: [IoChannel; 3] = [
    IoChannel::HdfsRead,
    IoChannel::ShuffleRead,
    IoChannel::PersistRead,
];
const WRITE_CHANNELS: [IoChannel; 3] = [
    IoChannel::HdfsWrite,
    IoChannel::ShuffleWrite,
    IoChannel::PersistWrite,
];

/// Renders the trace: one tab-separated line per stage with
/// `(M, t_avg, bytes_read, bytes_written, request_size)`, plus the total.
/// The runner maps a workload to its finished run, so the same renderer can
/// snapshot the direct path and the scenario-engine path.
fn snapshot_with(run_workload: impl Fn(Workload) -> doppio::sparksim::AppRun) -> String {
    let mut out = String::new();
    out.push_str("# workload\tstage\tM\tt_avg_bits\tbytes_read\tbytes_written\trequest_size\n");
    for workload in [Workload::Gatk4, Workload::Terasort] {
        let run = run_workload(workload);
        for s in run.stages() {
            let read: u64 = READ_CHANNELS
                .iter()
                .map(|&ch| s.channel(ch).bytes.as_u64())
                .sum();
            let written: u64 = WRITE_CHANNELS
                .iter()
                .map(|&ch| s.channel(ch).bytes.as_u64())
                .sum();
            let (bytes, requests) =
                IoChannel::DISK_CHANNELS
                    .iter()
                    .fold((0u64, 0u64), |(b, r), &ch| {
                        let c = s.channel(ch);
                        (b + c.bytes.as_u64(), r + c.requests)
                    });
            let request_size = bytes.checked_div(requests).unwrap_or(0);
            writeln!(
                out,
                "{}\t{}\t{}\t{:016x}\t{}\t{}\t{}",
                workload.name(),
                s.name,
                s.tasks.count,
                s.tasks.avg_secs.to_bits(),
                read,
                written,
                request_size,
            )
            .unwrap();
        }
        writeln!(
            out,
            "{}\tTOTAL\t-\t{:016x}\t-\t-\t-",
            workload.name(),
            run.total_time().as_secs().to_bits(),
        )
        .unwrap();
    }
    out
}

fn snapshot() -> String {
    snapshot_with(|workload| {
        let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd);
        Simulation::with_conf(cluster, SparkConf::paper().with_cores(12).with_seed(SEED))
            .run(&workload.scaled_app())
            .expect("golden workload simulates")
    })
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

#[test]
fn per_stage_metrics_match_the_checked_in_fixture() {
    let current = snapshot();
    if std::env::var_os("DOPPIO_BLESS").is_some() {
        std::fs::write(fixture_path(), &current).expect("fixture is writable");
        return;
    }
    let golden = std::fs::read_to_string(fixture_path())
        .expect("fixture exists — run with DOPPIO_BLESS=1 to create it");
    if current != golden {
        let diffs: Vec<String> = golden
            .lines()
            .zip(current.lines())
            .filter(|(g, c)| g != c)
            .map(|(g, c)| format!("  - {g}\n  + {c}"))
            .collect();
        panic!(
            "golden trace drifted ({} line(s) differ, {} vs {} lines):\n{}\n\
             If the simulator change is intentional, re-bless with \
             DOPPIO_BLESS=1 and review the fixture diff.",
            diffs.len(),
            golden.lines().count(),
            current.lines().count(),
            diffs.join("\n")
        );
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_to_the_fixture_at_any_thread_count() {
    // The fault-injection path must be invisible when the plan is empty:
    // routing the golden workloads through the scenario engine with an
    // explicit empty `FaultPlan` — at one worker and at several — must
    // reproduce the checked-in fixture bit for bit.
    use doppio::engine::Engine;
    use doppio::scenario::ScenarioSet;
    use doppio::sparksim::FaultPlan;

    let golden = std::fs::read_to_string(fixture_path())
        .expect("fixture exists — run with DOPPIO_BLESS=1 to create it");
    for jobs in [1usize, 4] {
        let current = snapshot_with(|workload| {
            let set = ScenarioSet::seeded_replicas(
                workload.name(),
                workload.scaled_app(),
                ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd),
                SparkConf::paper().with_cores(12),
                &[SEED],
            )
            .with_fault_plan(FaultPlan::empty());
            set.run_all(&Engine::with_jobs(jobs))
                .expect("golden workload simulates")
                .remove(0)
        });
        assert_eq!(
            current, golden,
            "empty fault plan drifted off the golden path at jobs={jobs}"
        );
    }
}

#[test]
fn batched_execution_is_bit_identical_to_the_fixture() {
    // The batched path (shared plan per batch, deferred per-node
    // integration) must reproduce the checked-in fixture bit for bit at
    // widths 1 and 4 — no re-bless allowed for a wall-clock optimization.
    use doppio::engine::Engine;
    use doppio::scenario::ScenarioSet;
    use doppio::sparksim::FaultPlan;

    let golden = std::fs::read_to_string(fixture_path())
        .expect("fixture exists — run with DOPPIO_BLESS=1 to create it");
    for width in [1usize, 4] {
        let current = snapshot_with(|workload| {
            let set = ScenarioSet::seeded_replicas(
                workload.name(),
                workload.scaled_app(),
                ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd),
                SparkConf::paper().with_cores(12),
                &[SEED],
            )
            .with_fault_plan(FaultPlan::empty());
            set.run_batched(&Engine::serial(), width)
                .expect("golden workload simulates")
                .remove(0)
        });
        assert_eq!(
            current, golden,
            "batched execution drifted off the golden path at width={width}"
        );
    }
}

#[test]
fn heterogeneous_conf_batch_has_no_cross_run_state_bleed() {
    // One batch mixing SparkConfs (different core counts and seeds around
    // the golden lane): the golden lane's trace must still match the
    // fixture exactly, and each neighbour must equal its own standalone
    // run — proof that lanes share plans without sharing state.
    use doppio::engine::Engine;
    use doppio::scenario::{Scenario, ScenarioSet};
    use doppio::sparksim::FaultPlan;

    let golden = std::fs::read_to_string(fixture_path())
        .expect("fixture exists — run with DOPPIO_BLESS=1 to create it");
    let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd);
    let confs = [
        SparkConf::paper().with_cores(8).with_seed(SEED + 1),
        SparkConf::paper().with_cores(12).with_seed(SEED), // the golden lane
        SparkConf::paper().with_cores(36).with_seed(SEED + 2),
    ];
    let current = snapshot_with(|workload| {
        let lanes: Vec<Scenario> = confs
            .iter()
            .map(|conf| Scenario {
                workload: workload.name().to_string(),
                app: workload.scaled_app(),
                cluster: cluster.clone(),
                conf: conf.clone(),
                faults: FaultPlan::empty(),
            })
            .collect();
        let set = ScenarioSet::new(lanes.clone());
        let mut runs = set
            .run_batched(&Engine::serial(), lanes.len())
            .expect("mixed batch simulates");
        // Neighbour lanes equal their standalone runs to the bit.
        for (i, lane) in lanes.iter().enumerate() {
            assert_eq!(
                runs[i],
                lane.run().expect("standalone lane simulates"),
                "lane {i} (cores={}) bled state from a neighbour",
                lane.conf.executor_cores
            );
        }
        runs.remove(1)
    });
    assert_eq!(
        current, golden,
        "golden lane drifted inside a heterogeneous batch"
    );
}

#[test]
fn golden_trace_is_seed_sensitive() {
    // The fixture pins one seed; make sure it is actually pinning
    // something — a different seed must change at least one timing bit.
    let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd);
    let app = Workload::Terasort.scaled_app();
    let a = Simulation::with_conf(
        cluster.clone(),
        SparkConf::paper().with_cores(12).with_seed(SEED),
    )
    .run(&app)
    .unwrap();
    let b = Simulation::with_conf(
        cluster,
        SparkConf::paper().with_cores(12).with_seed(SEED + 1),
    )
    .run(&app)
    .unwrap();
    assert_ne!(
        a.total_time().as_secs().to_bits(),
        b.total_time().as_secs().to_bits()
    );
}
