//! Cross-crate integration for the Section-VI cost study: calibrate on
//! simulated cloud disks, optimize, and check the paper's qualitative
//! findings (optimum beats the reference guides, small-SSD local wins,
//! descent agrees with exhaustive search).

use doppio::cloud::optimize::{
    grid_search, multi_start_descent, r1_reference, r2_reference, SearchSpace,
};
use doppio::cloud::{CloudConfig, CloudDiskType, CloudPlatform, CostEvaluator, DiskChoice};
use doppio::sparksim::SparkConf;
use doppio::workloads::gatk4;
use doppio::workloads::genome::GenomeDataset;

fn evaluator() -> CostEvaluator {
    let params = gatk4::Params {
        dataset: GenomeDataset::hcc1954().scaled(1.0 / 8.0),
        ..gatk4::Params::paper()
    };
    let app = gatk4::app(&params);
    let mut platform = CloudPlatform::new(app, 3, 16, SparkConf::paper());
    let report = platform
        .calibrate_with_resizing("GATK4", 3)
        .expect("cloud calibration succeeds");
    CostEvaluator::new(report.model)
}

#[test]
fn optimum_beats_both_reference_guides() {
    let eval = evaluator();
    let best = grid_search(&eval, &SearchSpace::paper());
    let r1 = eval.evaluate(&r1_reference(10, 16));
    let r2 = eval.evaluate(&r2_reference(10, 16));
    let s1 = 1.0 - best.cost.total() / r1.total();
    let s2 = 1.0 - best.cost.total() / r2.total();
    assert!(s1 > 0.10, "savings vs R1 = {:.0}%", s1 * 100.0);
    assert!(s2 > s1, "R2 over-provisions more");
    assert!(s2 > 0.30, "savings vs R2 = {:.0}%", s2 * 100.0);
}

#[test]
fn descent_finds_the_grid_optimum() {
    let eval = evaluator();
    let space = SearchSpace::paper();
    let descent = multi_start_descent(&eval, &space);
    let grid = grid_search(&eval, &space);
    // Multi-start coordinate descent is a heuristic on a coupled
    // discrete space; it must land within a few percent of the grid.
    assert!(
        descent.cost.total() <= grid.cost.total() * 1.05,
        "descent ${:.2} vs grid ${:.2}",
        descent.cost.total(),
        grid.cost.total()
    );
    assert!(descent.evaluations < grid.evaluations * 2);
}

#[test]
fn optimal_local_disk_is_a_small_ssd() {
    // Paper §VI.4: a modest SSD Spark-local directory plus a standard-PD
    // HDFS disk is cost-optimal — the 30 KB shuffle reads need IOPS, not
    // provisioned terabytes.
    let eval = evaluator();
    let best = grid_search(&eval, &SearchSpace::paper());
    assert_eq!(best.config.local.disk_type, CloudDiskType::SsdPd);
    assert!(
        best.config.local.size.as_f64() <= 1.0e12,
        "local = {}",
        best.config.local
    );
    assert_eq!(
        best.config.hdfs.disk_type,
        CloudDiskType::StandardPd,
        "SSD HDFS buys nothing"
    );
}

#[test]
fn runtime_monotone_and_cost_u_shaped_in_local_size() {
    let eval = evaluator();
    let base = CloudConfig {
        nodes: 10,
        vcpus: 16,
        hdfs: DiskChoice::standard_gb(1000),
        local: DiskChoice::ssd_gb(200),
    };
    let sweep = doppio::cloud::optimize::sweep_local_sizes(
        &eval,
        base,
        CloudDiskType::SsdPd,
        &[20, 50, 100, 200, 400, 800, 1600, 3200],
    );
    for w in sweep.windows(2) {
        assert!(
            w[1].1.runtime_secs <= w[0].1.runtime_secs + 1e-6,
            "runtime monotone"
        );
    }
    let costs: Vec<f64> = sweep.iter().map(|(_, c)| c.total()).collect();
    let min_idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert!(
        min_idx > 0 && min_idx < costs.len() - 1,
        "U-shape: optimum interior, idx={min_idx}"
    );
}

#[test]
fn cloud_calibration_resizing_rules_apply() {
    let params = gatk4::Params {
        dataset: GenomeDataset::hcc1954().scaled(1.0 / 8.0),
        ..gatk4::Params::paper()
    };
    let mut platform = CloudPlatform::new(gatk4::app(&params), 3, 16, SparkConf::paper());
    let before = (platform.ssd_size(), platform.hdd_size());
    let report = platform
        .calibrate_with_resizing("GATK4", 3)
        .expect("calibrates");
    assert!(platform.ssd_size() >= before.0);
    assert!(platform.hdd_size() <= before.1);
    assert!(!report.model.stages().is_empty());
}
