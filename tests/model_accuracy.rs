//! The paper's headline claim (Section V): the calibrated I/O-aware model
//! predicts application runtime within a 10% average error, across both
//! iterative and shuffle-heavy workloads and across device configurations.
//!
//! Calibration runs on a 3-slave profiling cluster; predictions target a
//! 5-slave cluster the model never saw, under SSD and HDD configurations.

use doppio::cluster::{presets, ClusterSpec, HybridConfig};
use doppio::model::{Calibrator, PredictEnv, SimPlatform};
use doppio::sparksim::{App, Simulation, SparkConf};
use doppio::workloads::Workload;

fn calibrate_at(app: &App, nodes: usize) -> doppio::model::AppModel {
    let platform = SimPlatform::new(
        app.clone(),
        presets::paper_node(36, HybridConfig::SsdSsd),
        nodes,
        SparkConf::paper(),
    );
    Calibrator::default()
        .calibrate(&platform, app.name())
        .expect("calibration succeeds")
        .model
}

fn measure(app: &App, nodes: usize, cores: u32, config: HybridConfig) -> f64 {
    let cluster = ClusterSpec::paper_cluster(nodes, 36, config);
    Simulation::with_conf(
        cluster,
        SparkConf::paper().with_cores(cores).without_noise(),
    )
    .run(app)
    .expect("simulation succeeds")
    .total_time()
    .as_secs()
}

fn check_workload(w: Workload, tolerance_pct: f64) {
    let app = w.scaled_app();
    // Workloads whose spill volume depends on cluster memory (LR-large,
    // PageRank) must profile on the target cluster size, as the paper's
    // Section-V evaluation does; the rest calibrate on a smaller cluster.
    let profile_nodes = match w {
        Workload::LrLarge | Workload::PageRank => 5,
        _ => 3,
    };
    let model = calibrate_at(&app, profile_nodes);
    let mut errors = Vec::new();
    for config in [
        HybridConfig::SsdSsd,
        HybridConfig::SsdHdd,
        HybridConfig::HddHdd,
    ] {
        for cores in [8u32, 24] {
            let exp = measure(&app, 5, cores, config);
            let pred = model.predict(&PredictEnv::hybrid(5, cores, config));
            let err = (pred - exp).abs() / exp * 100.0;
            errors.push(err);
        }
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        avg < tolerance_pct,
        "{w}: average prediction error {avg:.1}% exceeds {tolerance_pct}% \
         (per-config errors: {errors:?})"
    );
}

#[test]
fn gatk4_within_10_percent() {
    check_workload(Workload::Gatk4, 10.0);
}

#[test]
fn lr_small_within_10_percent() {
    check_workload(Workload::LrSmall, 10.0);
}

#[test]
fn lr_large_within_10_percent() {
    check_workload(Workload::LrLarge, 10.0);
}

#[test]
fn svm_within_10_percent() {
    check_workload(Workload::Svm, 10.0);
}

#[test]
fn pagerank_within_10_percent() {
    check_workload(Workload::PageRank, 10.0);
}

#[test]
fn triangle_count_within_10_percent() {
    check_workload(Workload::TriangleCount, 10.0);
}

#[test]
fn terasort_within_10_percent() {
    check_workload(Workload::Terasort, 10.0);
}

/// The model must remain accurate at a cluster size it never profiled
/// (the paper calibrates at N = 3 and evaluates at N = 10).
#[test]
fn node_count_extrapolation() {
    let app = Workload::Terasort.scaled_app();
    let model = calibrate_at(&app, 3);
    for nodes in [2usize, 8] {
        let exp = measure(&app, nodes, 16, HybridConfig::SsdSsd);
        let pred = model.predict(&PredictEnv::hybrid(nodes, 16, HybridConfig::SsdSsd));
        let err = (pred - exp).abs() / exp * 100.0;
        assert!(err < 12.0, "N={nodes}: error {err:.1}%");
    }
}
