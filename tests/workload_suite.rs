//! Every workload runs end to end through the full stack, on SSD and HDD
//! configurations, with sane invariants: positive stage times, HDD never
//! faster than SSD, and data volumes independent of the device.

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::sparksim::{AppRun, IoChannel, Simulation, SparkConf};
use doppio::workloads::Workload;

fn run(w: Workload, config: HybridConfig) -> AppRun {
    let app = w.scaled_app();
    let cluster = ClusterSpec::paper_cluster(2, 36, config);
    Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
        .run(&app)
        .unwrap_or_else(|e| panic!("{w} failed to simulate: {e}"))
}

#[test]
fn all_workloads_run_on_both_device_configs() {
    for w in Workload::ALL {
        let ssd = run(w, HybridConfig::SsdSsd);
        let hdd = run(w, HybridConfig::HddHdd);
        assert!(!ssd.stages().is_empty(), "{w} produced stages");
        for s in ssd.stages() {
            assert!(
                s.duration.as_secs() > 0.0,
                "{w}/{} has positive duration",
                s.name
            );
            assert!(s.tasks.count > 0);
            let eps = 1e-9 * s.tasks.max_secs.max(1.0);
            assert!(
                s.tasks.min_secs <= s.tasks.avg_secs + eps
                    && s.tasks.avg_secs <= s.tasks.max_secs + eps,
                "{w}/{}: min {} avg {} max {}",
                s.name,
                s.tasks.min_secs,
                s.tasks.avg_secs,
                s.tasks.max_secs
            );
        }
        let ratio = hdd.total_time().as_secs() / ssd.total_time().as_secs();
        assert!(
            ratio >= 0.999,
            "{w}: HDD must not beat SSD (ratio {ratio:.3})"
        );
    }
}

#[test]
fn data_volumes_are_device_independent() {
    for w in Workload::ALL {
        let ssd = run(w, HybridConfig::SsdSsd);
        let hdd = run(w, HybridConfig::HddHdd);
        for ch in IoChannel::DISK_CHANNELS {
            assert_eq!(
                ssd.total_channel_bytes(ch),
                hdd.total_channel_bytes(ch),
                "{w}: {ch} volume must not depend on the device"
            );
        }
    }
}

#[test]
fn stage_names_follow_the_paper() {
    let expectations: [(Workload, &[&str]); 7] = [
        (Workload::Gatk4, &["MD", "BR", "SF"]),
        (Workload::LrSmall, &["dataValidator", "iteration"]),
        (Workload::LrLarge, &["dataValidator", "iteration"]),
        (Workload::Svm, &["dataValidator", "iteration", "subtract"]),
        (
            Workload::PageRank,
            &["graphLoader", "iteration", "saveAsTextFile"],
        ),
        (
            Workload::TriangleCount,
            &["graphLoader", "computeTriangleCount"],
        ),
        (Workload::Terasort, &["NF", "SF"]),
    ];
    for (w, names) in expectations {
        let r = run(w, HybridConfig::SsdSsd);
        for name in names {
            assert!(r.stage(name).is_some(), "{w} must have stage '{name}'");
        }
    }
}

#[test]
fn io_sensitivity_ordering_matches_the_paper_summary() {
    // Section V-B summary: shuffle-heavy phases see the largest HDD/SSD
    // gaps; memory-cached iterative phases see none.
    let tc_ssd = run(Workload::TriangleCount, HybridConfig::SsdSsd);
    let tc_hdd = run(Workload::TriangleCount, HybridConfig::HddHdd);
    let tc_gap = doppio::workloads::triangle::compute_time(&tc_hdd).as_secs()
        / doppio::workloads::triangle::compute_time(&tc_ssd).as_secs();

    let lr_ssd = run(Workload::LrSmall, HybridConfig::SsdSsd);
    let lr_hdd = run(Workload::LrSmall, HybridConfig::HddHdd);
    let lr_iter_gap = lr_hdd.time_in("iteration").as_secs() / lr_ssd.time_in("iteration").as_secs();

    assert!(tc_gap > 3.0, "triangle-count shuffle gap = {tc_gap:.1}x");
    assert!(
        (lr_iter_gap - 1.0).abs() < 0.05,
        "cached LR iterations gap = {lr_iter_gap:.2}x"
    );
    assert!(tc_gap > lr_iter_gap * 2.0);
}
