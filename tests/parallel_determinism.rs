//! The tentpole guarantee of the scenario engine: fanning work out over
//! threads changes wall-clock time, never results. Every test here runs
//! the same computation serially and at several worker counts and demands
//! byte-identical output — full simulator metrics, calibrated models, and
//! optimizer decisions alike.

use doppio::cloud::optimize::{
    grid_search, grid_search_with, multi_start_descent, multi_start_descent_with, SearchSpace,
};
use doppio::cloud::{CostEvaluator, DiskChoice, MemoizedEvaluator};
use doppio::cluster::{presets, ClusterSpec, HybridConfig};
use doppio::engine::Engine;
use doppio::events::{Bytes, Rate};
use doppio::model::{AppModel, Calibrator, ChannelModel, SimPlatform, StageModel};
use doppio::scenario::ScenarioSet;
use doppio::sparksim::{AppRun, IoChannel, SparkConf};
use doppio::workloads::terasort;
use proptest::prelude::*;

fn scenario_set(seeds: &[u64]) -> ScenarioSet {
    ScenarioSet::seeded_replicas(
        "terasort",
        terasort::app(&terasort::Params::scaled_down()),
        ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd),
        SparkConf::paper().with_cores(8),
        seeds,
    )
}

/// Compares two batches stage by stage at f64 bit granularity, so even a
/// last-ulp reduction-order difference would fail loudly.
fn assert_bit_identical(a: &[AppRun], b: &[AppRun]) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(
            ra.total_time().as_secs().to_bits(),
            rb.total_time().as_secs().to_bits()
        );
        for (sa, sb) in ra.stages().iter().zip(rb.stages()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(
                sa.duration.as_secs().to_bits(),
                sb.duration.as_secs().to_bits()
            );
            assert_eq!(sa.tasks.count, sb.tasks.count);
            assert_eq!(sa.tasks.avg_secs.to_bits(), sb.tasks.avg_secs.to_bits());
            for ch in IoChannel::DISK_CHANNELS {
                assert_eq!(sa.channel(ch), sb.channel(ch), "{} {ch}", sa.name);
            }
        }
        assert_eq!(ra, rb, "full metric structs must also agree");
    }
}

#[test]
fn seeded_scenarios_identical_at_every_thread_count() {
    let seeds = [11u64, 12, 13, 14, 15];
    let baseline = scenario_set(&seeds)
        .run_all(&Engine::serial())
        .expect("serial batch runs");
    for jobs in [2usize, 4, 8] {
        let parallel = scenario_set(&seeds)
            .run_all(&Engine::with_jobs(jobs))
            .expect("parallel batch runs");
        assert_bit_identical(&baseline, &parallel);
    }
}

#[test]
fn memo_cache_replays_are_bit_identical_too() {
    let seeds = [21u64, 22, 23];
    let set = scenario_set(&seeds);
    let cold = set.run_all(&Engine::with_jobs(4)).expect("cold batch");
    assert_eq!(set.cache_misses(), seeds.len() as u64);
    let warm = set.run_all(&Engine::with_jobs(4)).expect("warm batch");
    assert_eq!(set.cache_hits(), seeds.len() as u64);
    assert_bit_identical(&cold, &warm);
}

#[test]
fn calibration_identical_serial_vs_parallel() {
    let mk = |engine: &Engine| {
        let platform = SimPlatform::new(
            terasort::app(&terasort::Params::scaled_down()),
            presets::paper_node(36, HybridConfig::SsdSsd),
            3,
            SparkConf::paper(),
        );
        Calibrator::default()
            .calibrate_with(&platform, "terasort", engine)
            .expect("calibrates")
            .model
    };
    let serial = mk(&Engine::serial());
    assert_eq!(serial, mk(&Engine::with_jobs(2)));
    assert_eq!(serial, mk(&Engine::with_jobs(4)));
}

fn toy_model(m: u64, t_avg: f64, shuffle_gib: u64, rs_kib: u64) -> AppModel {
    AppModel::new(
        "toy",
        vec![StageModel {
            name: "s".into(),
            m,
            t_avg,
            delta_scale: 0.0,
            channels: vec![ChannelModel::new(
                IoChannel::ShuffleRead,
                Bytes::from_gib(shuffle_gib),
                Bytes::from_kib(rs_kib),
                Some(Rate::mib_per_sec(60.0)),
            )],
        }],
    )
}

#[test]
fn grid_search_identical_serial_vs_parallel() {
    let eval = CostEvaluator::new(toy_model(3200, 18.0, 300, 30));
    let space = SearchSpace::paper();
    let serial = grid_search(&eval, &space);
    for jobs in [2usize, 4, 7] {
        let parallel = grid_search_with(&eval, &space, &Engine::with_jobs(jobs));
        assert_eq!(serial, parallel, "jobs={jobs}");
    }
}

#[test]
fn multi_start_descent_identical_serial_vs_parallel() {
    let eval = CostEvaluator::new(toy_model(3200, 18.0, 300, 30));
    let space = SearchSpace::paper();
    let serial = multi_start_descent(&eval, &space);
    let parallel = multi_start_descent_with(&eval, &space, &Engine::with_jobs(4));
    assert_eq!(serial, parallel);
}

#[test]
fn memoized_evaluator_changes_counters_not_results() {
    let plain = CostEvaluator::new(toy_model(3200, 18.0, 300, 30));
    let memo = MemoizedEvaluator::new(CostEvaluator::new(toy_model(3200, 18.0, 300, 30)));
    let space = SearchSpace::paper();
    let a = grid_search_with(&plain, &space, &Engine::with_jobs(4));
    let b = grid_search_with(&memo, &space, &Engine::with_jobs(4));
    assert_eq!(a, b);
    assert_eq!(
        memo.misses() as usize,
        space.len(),
        "grid points are distinct"
    );
    // A second pass over the same space is answered entirely from cache.
    let c = grid_search_with(&memo, &space, &Engine::with_jobs(4));
    assert_eq!(a, c);
    assert_eq!(memo.hits() as usize, space.len());
}

fn arb_space() -> impl Strategy<Value = SearchSpace> {
    let sizes = || {
        prop::collection::vec(
            prop::sample::select(vec![50u64, 100, 200, 500, 1000, 2000, 4000]),
            1..5,
        )
    };
    (
        prop::collection::vec(prop::sample::select(vec![3usize, 5, 10, 20]), 1..4),
        prop::collection::vec(prop::sample::select(vec![2u32, 4, 8, 16, 32]), 1..4),
        sizes(),
        sizes(),
        any::<bool>(),
    )
        .prop_map(|(nodes, vcpus, hdfs_gb, local_gb, mix_ssd)| {
            let choices = |gbs: &[u64]| {
                gbs.iter()
                    .flat_map(|&gb| {
                        let mut v = vec![DiskChoice::standard_gb(gb)];
                        if mix_ssd {
                            v.push(DiskChoice::ssd_gb(gb));
                        }
                        v
                    })
                    .collect::<Vec<_>>()
            };
            SearchSpace {
                nodes,
                vcpus,
                hdfs: choices(&hdfs_gb),
                local: choices(&local_gb),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary discrete spaces and models, the parallel grid search
    /// returns exactly the serial grid optimum — same winning config, same
    /// cost bits, same evaluation count — with and without memoization.
    #[test]
    fn parallel_grid_matches_serial_optimum(
        space in arb_space(),
        m in 100u64..20_000,
        t_avg in 0.5f64..30.0,
        shuffle_gib in 10u64..500,
        rs_kib in 8u64..4096,
        jobs in 2usize..6,
    ) {
        let eval = CostEvaluator::new(toy_model(m, t_avg, shuffle_gib, rs_kib));
        let serial = grid_search(&eval, &space);
        let parallel = grid_search_with(&eval, &space, &Engine::with_jobs(jobs));
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(
            serial.cost.total().to_bits(),
            parallel.cost.total().to_bits()
        );
        let memo = MemoizedEvaluator::new(CostEvaluator::new(toy_model(m, t_avg, shuffle_gib, rs_kib)));
        let memoized = grid_search_with(&memo, &space, &Engine::with_jobs(jobs));
        prop_assert_eq!(&serial, &memoized);
    }
}
