//! Overload behavior: a saturated server sheds with structured
//! `overloaded` replies instead of blocking, every request id gets
//! exactly one reply, and the server keeps serving afterwards.

use std::collections::HashMap;

use doppio::cluster::HybridConfig;
use doppio::serve::{start, Client, Envelope, Request, ServeConfig, SimulateSpec};
use doppio::workloads::Workload;

fn spec(seed: u64) -> SimulateSpec {
    SimulateSpec {
        workload: Workload::Terasort,
        nodes: 2,
        cores: 4,
        config: HybridConfig::SsdSsd,
        seed,
        paper: false,
        inject: None,
        fault_seed: 7,
    }
}

#[test]
fn saturated_queue_sheds_and_recovers() {
    let handle = start(ServeConfig {
        workers: 1,
        queue_bound: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // Pipeline 30 distinct requests (distinct seeds → distinct cache
    // keys, so nothing coalesces) far faster than one worker can drain.
    const N: u64 = 30;
    for i in 0..N {
        client
            .send(&Envelope {
                id: format!("burst-{i}"),
                deadline_ms: None,
                request: Request::Simulate(spec(1000 + i)),
            })
            .expect("request sent");
    }

    // Exactly one reply per id, whatever the order they arrive in.
    let mut replies = HashMap::new();
    for _ in 0..N {
        let r = client
            .recv()
            .expect("reply line parses")
            .expect("no EOF before all replies");
        assert!(
            replies.insert(r.id.clone(), r).is_none(),
            "an id replied twice"
        );
    }
    for i in 0..N {
        assert!(
            replies.contains_key(&format!("burst-{i}")),
            "burst-{i} never got a reply"
        );
    }

    let ok = replies.values().filter(|r| r.ok).count();
    let shed = replies
        .values()
        .filter(|r| !r.ok)
        .inspect(|r| {
            assert_eq!(
                r.error_code.as_deref(),
                Some("overloaded"),
                "only load shedding may fail these requests: {:?}",
                r.error_message
            );
            assert!(
                r.queue_depth.is_some(),
                "overloaded replies must report the observed queue depth"
            );
        })
        .count();
    assert!(
        ok >= 1,
        "the worker must complete at least the first request"
    );
    assert!(
        shed >= 1,
        "a bound-2 queue cannot absorb a 30-request burst without shedding"
    );
    assert_eq!(ok + shed, N as usize);

    // The server is still healthy: stats answers inline and the shed
    // counter agrees with what the client observed.
    let stats = client.call(Request::Stats, None).expect("stats reply");
    assert!(stats.ok, "stats failed after the burst");
    let result = stats.result.expect("stats carries a result");
    let shed_counter = result
        .get("shed")
        .and_then(|v| v.as_u64())
        .expect("stats.shed");
    assert_eq!(shed_counter, shed as u64, "server-side shed count agrees");

    // And fresh work still evaluates.
    let after = client
        .call(Request::Simulate(spec(9_999)), None)
        .expect("post-burst simulate");
    assert!(after.ok, "server must keep serving after shedding");

    handle.join();
}
