//! Chaos harness: the serving path under injected wire faults.
//!
//! A seeded [`ChaosProxy`] sits between a [`RetryingClient`] and a real
//! server and misbehaves per profile — refused connections, delayed
//! chunks, truncated replies, garbage injection, mid-reply drops. The
//! properties locked down here:
//!
//! * **Exactly one semantic outcome per request id**: bit-identical
//!   success, a structured protocol error, or a client-side error — never
//!   silence, never two answers.
//! * **Bit-identity survives chaos**: every *successful* reply payload is
//!   byte-identical to the in-process `Scenario::run` render, whatever
//!   the proxy did to the wire.
//! * **Panic isolation**: an injected worker panic costs one structured
//!   `internal_error` reply, shows up in `stats` and `health`, and the
//!   same worker keeps serving.
//! * **Fail-fast on a dead endpoint**: the circuit breaker turns a dead
//!   server into microsecond rejections instead of per-call timeouts.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::scenario::Scenario;
use doppio::serve::protocol::workload_name;
use doppio::serve::{
    start, BreakerConfig, CallError, ChaosProfile, ChaosProxy, Client, ClientConfig, Request,
    RetryPolicy, RetryingClient, ServeConfig, SimulateSpec,
};
use doppio::sparksim::{json, FaultPlan, SparkConf};
use doppio::workloads::Workload;

fn spec(seed: u64) -> SimulateSpec {
    SimulateSpec {
        workload: Workload::Terasort,
        nodes: 2,
        cores: 4,
        config: HybridConfig::SsdSsd,
        seed,
        paper: false,
        inject: None,
        fault_seed: 7,
    }
}

/// The in-process ground-truth payload for `spec(seed)`.
fn expected_payload(seed: u64) -> String {
    let s = spec(seed);
    let run = Scenario {
        workload: workload_name(s.workload).to_string(),
        app: s.workload.scaled_app(),
        cluster: ClusterSpec::paper_cluster(s.nodes, 36, s.config),
        conf: SparkConf::paper().with_cores(s.cores).with_seed(s.seed),
        faults: FaultPlan::empty(),
    }
    .run()
    .expect("in-process run");
    json::app_run(&run).render_line()
}

/// A retrying client tuned for test pace: short backoffs, short breaker
/// cooldown, generous socket timeouts.
fn retrying(addr: String, seed: u64) -> RetryingClient {
    RetryingClient::new(
        addr,
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(1_000)),
            read_timeout: Some(Duration::from_millis(3_000)),
            write_timeout: Some(Duration::from_millis(3_000)),
        },
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
            probe_budget: 2,
        },
        seed,
    )
}

#[test]
fn every_profile_yields_exactly_one_outcome_per_request() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");

    let seeds = [31u64, 32, 33];
    let expected: Vec<String> = seeds.iter().map(|&s| expected_payload(s)).collect();

    for (p_idx, profile) in ChaosProfile::ALL.into_iter().enumerate() {
        let mut proxy =
            ChaosProxy::start(handle.addr(), profile, 0xC4A0_5000 + p_idx as u64).expect("proxy");
        let mut rc = retrying(proxy.addr().to_string(), 0x5EED + p_idx as u64);

        let mut successes = 0u32;
        let mut server_errors = 0u32;
        let mut client_errors = 0u32;
        let requests = 4 * seeds.len() as u32;
        for round in 0..4 {
            for (i, &seed) in seeds.iter().enumerate() {
                let mut outcome = rc.call(Request::Simulate(spec(seed)), None);
                // A request that hit an open breaker is retried after the
                // cooldown (bounded): the breaker shedding is the point,
                // abandoning the semantic check is not.
                let mut waits = 0;
                while matches!(outcome, Err(CallError::CircuitOpen)) && waits < 30 {
                    std::thread::sleep(Duration::from_millis(20));
                    waits += 1;
                    outcome = rc.call(Request::Simulate(spec(seed)), None);
                }
                match outcome {
                    Ok(r) if r.ok => {
                        successes += 1;
                        assert!(
                            r.raw.ends_with(&format!("\"result\": {}}}", expected[i])),
                            "[{}] round {round} seed {seed}: successful reply bytes \
                             diverge from the in-process render\n  raw: {}",
                            profile.name(),
                            r.raw
                        );
                    }
                    Ok(r) => {
                        server_errors += 1;
                        assert!(
                            r.error_code.is_some(),
                            "[{}] error reply without a structured code: {}",
                            profile.name(),
                            r.raw
                        );
                    }
                    Err(e) => {
                        client_errors += 1;
                        // Any client-side terminal error is a legitimate
                        // single outcome; its Display must not be empty.
                        assert!(!e.to_string().is_empty());
                    }
                }
            }
        }
        assert_eq!(
            successes + server_errors + client_errors,
            requests,
            "[{}] every request id resolves to exactly one outcome",
            profile.name()
        );
        assert!(
            successes > 0,
            "[{}] retries must get at least one request through",
            profile.name()
        );
        proxy.stop();
    }

    // The server itself never wedged: a direct request still evaluates.
    let mut direct = Client::connect(handle.addr()).expect("direct connect");
    let after = direct
        .call(Request::Simulate(spec(99)), None)
        .expect("post-chaos request");
    assert!(after.ok, "server must keep serving after every profile");
    handle.join();
}

#[test]
fn worker_panic_is_isolated_and_reported() {
    let panic_seed = 0xDEAD;
    let handle = start(ServeConfig {
        workers: 1, // the panicking worker IS the only worker
        panic_seed: Some(panic_seed),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let reply = client
        .call(Request::Simulate(spec(panic_seed)), None)
        .expect("panicking request still gets a reply");
    assert!(!reply.ok, "a panicked evaluation cannot succeed");
    assert_eq!(
        reply.error_code.as_deref(),
        Some("internal_error"),
        "panic surfaces as the structured internal error: {:?}",
        reply.error_message
    );
    assert!(
        reply
            .error_message
            .as_deref()
            .unwrap_or_default()
            .contains("panicked"),
        "message names the panic: {:?}",
        reply.error_message
    );

    // The sole worker survived: fresh work still evaluates.
    let after = client
        .call(Request::Simulate(spec(77)), None)
        .expect("post-panic request");
    assert!(after.ok, "the worker must outlive the panic");

    // Both observability surfaces report it.
    for verb in [Request::Stats, Request::Health] {
        let r = client.call(verb, None).expect("control reply");
        assert!(r.ok);
        let result = r.result.expect("control payload");
        assert_eq!(
            result
                .get("panics")
                .and_then(doppio::engine::json::Value::as_u64),
            Some(1),
            "panic counter visible in {}",
            result
                .get("schema")
                .and_then(doppio::engine::json::Value::as_str)
                .unwrap_or("?")
        );
    }
    let health = client.call(Request::Health, None).expect("health reply");
    assert_eq!(
        health
            .result
            .expect("health payload")
            .get("ready")
            .and_then(doppio::engine::json::Value::as_bool),
        Some(true),
        "a survived panic does not flip readiness"
    );
    handle.join();
}

#[test]
fn dead_endpoint_fails_fast_once_the_breaker_opens() {
    // Bind then immediately free a port: connecting to it refuses fast.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let mut rc = RetryingClient::new(
        addr.to_string(),
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            read_timeout: Some(Duration::from_millis(250)),
            write_timeout: Some(Duration::from_millis(250)),
        },
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(10), // stays open for the test
            probe_budget: 1,
        },
        7,
    );

    // First call: both attempts fail at connect, tripping the breaker.
    match rc.call(Request::Stats, None) {
        Err(CallError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(
        rc.breaker().opened(),
        1,
        "two failures trip a threshold of 2"
    );

    // Open breaker: rejections must be microsecond-cheap, not
    // per-call connect timeouts.
    let t0 = Instant::now();
    for _ in 0..100 {
        assert!(matches!(
            rc.call(Request::Stats, None),
            Err(CallError::CircuitOpen)
        ));
    }
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "100 fast-failures took {:?} — the breaker is not shedding",
        t0.elapsed()
    );
    assert_eq!(rc.breaker().fast_failures(), 100);
    assert_eq!(
        rc.metrics().attempts,
        2,
        "no attempt touched the dead endpoint again"
    );
}
