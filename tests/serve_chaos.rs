//! Chaos harness: the serving path under injected wire faults.
//!
//! A seeded [`ChaosProxy`] sits between a [`RetryingClient`] and a real
//! server and misbehaves per profile — refused connections, delayed
//! chunks, truncated replies, garbage injection, mid-reply drops. The
//! properties locked down here:
//!
//! * **Exactly one semantic outcome per request id**: bit-identical
//!   success, a structured protocol error, or a client-side error — never
//!   silence, never two answers.
//! * **Bit-identity survives chaos**: every *successful* reply payload is
//!   byte-identical to the in-process `Scenario::run` render, whatever
//!   the proxy did to the wire.
//! * **Panic isolation**: an injected worker panic costs one structured
//!   `internal_error` reply, shows up in `stats` and `health`, and the
//!   same worker keeps serving.
//! * **Fail-fast on a dead endpoint**: the circuit breaker turns a dead
//!   server into microsecond rejections instead of per-call timeouts.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::scenario::Scenario;
use doppio::serve::protocol::workload_name;
use doppio::serve::{
    start, BreakerConfig, CallError, ChaosProfile, ChaosProxy, Client, ClientConfig, Request,
    RetryPolicy, RetryingClient, ServeConfig, SimulateSpec,
};
use doppio::sparksim::{json, FaultPlan, SparkConf};
use doppio::workloads::Workload;

fn spec(seed: u64) -> SimulateSpec {
    SimulateSpec {
        workload: Workload::Terasort,
        nodes: 2,
        cores: 4,
        config: HybridConfig::SsdSsd,
        seed,
        paper: false,
        inject: None,
        fault_seed: 7,
    }
}

/// The in-process ground-truth payload for `spec(seed)`.
fn expected_payload(seed: u64) -> String {
    let s = spec(seed);
    let run = Scenario {
        workload: workload_name(s.workload).to_string(),
        app: s.workload.scaled_app(),
        cluster: ClusterSpec::paper_cluster(s.nodes, 36, s.config),
        conf: SparkConf::paper().with_cores(s.cores).with_seed(s.seed),
        faults: FaultPlan::empty(),
    }
    .run()
    .expect("in-process run");
    json::app_run(&run).render_line()
}

/// A retrying client tuned for test pace: short backoffs, short breaker
/// cooldown, generous socket timeouts.
fn retrying(addr: String, seed: u64) -> RetryingClient {
    RetryingClient::new(
        addr,
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(1_000)),
            read_timeout: Some(Duration::from_millis(3_000)),
            write_timeout: Some(Duration::from_millis(3_000)),
        },
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
            probe_budget: 2,
        },
        seed,
    )
}

#[test]
fn every_profile_yields_exactly_one_outcome_per_request() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");

    let seeds = [31u64, 32, 33];
    let expected: Vec<String> = seeds.iter().map(|&s| expected_payload(s)).collect();

    for (p_idx, profile) in ChaosProfile::ALL.into_iter().enumerate() {
        let mut proxy =
            ChaosProxy::start(handle.addr(), profile, 0xC4A0_5000 + p_idx as u64).expect("proxy");
        let mut rc = retrying(proxy.addr().to_string(), 0x5EED + p_idx as u64);

        let mut successes = 0u32;
        let mut server_errors = 0u32;
        let mut client_errors = 0u32;
        let requests = 4 * seeds.len() as u32;
        for round in 0..4 {
            for (i, &seed) in seeds.iter().enumerate() {
                let mut outcome = rc.call(Request::Simulate(spec(seed)), None);
                // A request that hit an open breaker is retried after the
                // cooldown (bounded): the breaker shedding is the point,
                // abandoning the semantic check is not.
                let mut waits = 0;
                while matches!(outcome, Err(CallError::CircuitOpen { .. })) && waits < 30 {
                    std::thread::sleep(Duration::from_millis(20));
                    waits += 1;
                    outcome = rc.call(Request::Simulate(spec(seed)), None);
                }
                match outcome {
                    Ok(r) if r.ok => {
                        successes += 1;
                        assert!(
                            r.raw.ends_with(&format!("\"result\": {}}}", expected[i])),
                            "[{}] round {round} seed {seed}: successful reply bytes \
                             diverge from the in-process render\n  raw: {}",
                            profile.name(),
                            r.raw
                        );
                    }
                    Ok(r) => {
                        server_errors += 1;
                        assert!(
                            r.error_code.is_some(),
                            "[{}] error reply without a structured code: {}",
                            profile.name(),
                            r.raw
                        );
                    }
                    Err(e) => {
                        client_errors += 1;
                        // Any client-side terminal error is a legitimate
                        // single outcome; its Display must not be empty.
                        assert!(!e.to_string().is_empty());
                    }
                }
            }
        }
        assert_eq!(
            successes + server_errors + client_errors,
            requests,
            "[{}] every request id resolves to exactly one outcome",
            profile.name()
        );
        assert!(
            successes > 0,
            "[{}] retries must get at least one request through",
            profile.name()
        );
        proxy.stop();
    }

    // The server itself never wedged: a direct request still evaluates.
    let mut direct = Client::connect(handle.addr()).expect("direct connect");
    let after = direct
        .call(Request::Simulate(spec(99)), None)
        .expect("post-chaos request");
    assert!(after.ok, "server must keep serving after every profile");
    handle.join();
}

#[test]
fn worker_panic_is_isolated_and_reported() {
    let panic_seed = 0xDEAD;
    let handle = start(ServeConfig {
        workers: 1, // the panicking worker IS the only worker
        panic_seed: Some(panic_seed),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let reply = client
        .call(Request::Simulate(spec(panic_seed)), None)
        .expect("panicking request still gets a reply");
    assert!(!reply.ok, "a panicked evaluation cannot succeed");
    assert_eq!(
        reply.error_code.as_deref(),
        Some("internal_error"),
        "panic surfaces as the structured internal error: {:?}",
        reply.error_message
    );
    assert!(
        reply
            .error_message
            .as_deref()
            .unwrap_or_default()
            .contains("panicked"),
        "message names the panic: {:?}",
        reply.error_message
    );

    // The sole worker survived: fresh work still evaluates.
    let after = client
        .call(Request::Simulate(spec(77)), None)
        .expect("post-panic request");
    assert!(after.ok, "the worker must outlive the panic");

    // Both observability surfaces report it.
    for verb in [Request::Stats, Request::Health] {
        let r = client.call(verb, None).expect("control reply");
        assert!(r.ok);
        let result = r.result.expect("control payload");
        assert_eq!(
            result
                .get("panics")
                .and_then(doppio::engine::json::Value::as_u64),
            Some(1),
            "panic counter visible in {}",
            result
                .get("schema")
                .and_then(doppio::engine::json::Value::as_str)
                .unwrap_or("?")
        );
    }
    let health = client.call(Request::Health, None).expect("health reply");
    assert_eq!(
        health
            .result
            .expect("health payload")
            .get("ready")
            .and_then(doppio::engine::json::Value::as_bool),
        Some(true),
        "a survived panic does not flip readiness"
    );
    handle.join();
}

/// Shard-tier chaos: `SIGKILL` one real shard process mid-load *while*
/// the wire is already hostile — the load runs through a
/// `disconnect-heavy` chaos proxy in front of the router. Two failure
/// domains stack: the proxy refuses/cuts the client↔router leg (the
/// retrying client's problem) and the kill removes a shard behind the
/// router (the router's breaker-driven re-route). Every request id must
/// still resolve to exactly one semantic outcome, every success to the
/// in-process bytes, and the router must record the failover.
#[test]
fn killing_a_shard_mid_load_yields_exactly_one_outcome_per_request() {
    use doppio::engine::Fingerprintable as _;
    use doppio::serve::ring::DEFAULT_VNODES;
    use doppio::serve::{spawn_tier, start_router, HashRing, RouterConfig, TierSpec};

    let tier = spawn_tier(&TierSpec {
        exe: env!("CARGO_BIN_EXE_doppio").into(),
        shards: 3,
        workers_per_shard: 2,
        ..TierSpec::default()
    })
    .expect("tier starts");
    let router = start_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: tier.addrs().to_vec(),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(200),
            probe_budget: 1,
        },
        ..RouterConfig::default()
    })
    .expect("router starts");
    let mut proxy = ChaosProxy::start(router.addr(), ChaosProfile::DisconnectHeavy, 0xC4A0_8000)
        .expect("chaos proxy");

    let seeds = [61u64, 62, 63, 64, 65, 66];
    let expected: Vec<String> = seeds.iter().map(|&s| expected_payload(s)).collect();

    // Ring placement is a pure function of (shard ids, vnodes), so the
    // victim — the shard owning seeds[0] — is known before the kill.
    let ring = HashRing::new(&[0, 1, 2], DEFAULT_VNODES);
    let victim = ring.shard_for(&Request::Simulate(spec(seeds[0])).fingerprint()) as usize;

    let rounds = 6usize;
    let proxy_addr = proxy.addr().to_string();
    let (warmed_tx, warmed_rx) = std::sync::mpsc::channel::<()>();
    let outcomes: Vec<(usize, u64, Result<doppio::serve::Reply, CallError>)> =
        std::thread::scope(|scope| {
            let load = scope.spawn(move || {
                let mut rc = retrying(proxy_addr, 0x5EED_8000);
                let mut out = Vec::with_capacity(rounds * seeds.len());
                for round in 0..rounds {
                    for &seed in &seeds {
                        let mut outcome = rc.call(Request::Simulate(spec(seed)), Some(10_000));
                        // An open client-side breaker is shedding by
                        // design; wait it out (bounded) so every id still
                        // reaches a semantic outcome.
                        let mut waits = 0;
                        while matches!(outcome, Err(CallError::CircuitOpen { .. })) && waits < 50 {
                            std::thread::sleep(Duration::from_millis(20));
                            waits += 1;
                            outcome = rc.call(Request::Simulate(spec(seed)), Some(10_000));
                        }
                        out.push((round, seed, outcome));
                    }
                    if round == 0 {
                        // Every seed warm on its owner; time for the kill.
                        warmed_tx.send(()).expect("signal main");
                    }
                }
                out
            });
            warmed_rx.recv().expect("warm round finished");
            tier.kill_shard(victim); // SIGKILL, no drain, mid-load
            load.join().expect("load thread")
        });

    assert_eq!(
        outcomes.len(),
        rounds * seeds.len(),
        "every request id resolves exactly once"
    );
    let mut successes = 0u32;
    for (round, seed, outcome) in &outcomes {
        match outcome {
            Ok(reply) if reply.ok => {
                successes += 1;
                let want = &expected[seeds.iter().position(|s| s == seed).unwrap()];
                assert!(
                    reply.raw.ends_with(&format!("\"result\": {want}}}")),
                    "round {round} seed {seed}: bytes diverge after failover\n  raw: {}",
                    reply.raw
                );
            }
            // The dead shard never surfaces as a semantic error (two ring
            // successors survive); any error reply must be structured.
            Ok(reply) => {
                assert!(
                    reply.error_code.is_some(),
                    "round {round} seed {seed}: error reply without a code: {}",
                    reply.raw
                );
            }
            // Client-side terminal errors (the proxy's doing) are a
            // legitimate single outcome with a non-empty description.
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    assert!(
        successes > 0,
        "retries must get requests through the chaos proxy"
    );

    // The victim's keys stay owned by the successor: a fresh request on
    // a clean wire (no proxy) evaluates there, a repeat is that shard's
    // cache hit — and serving it at all required a breaker-driven
    // re-route past the dead owner.
    let mut client = Client::connect(router.addr()).expect("direct client");
    let fresh = client
        .call(Request::Simulate(spec(seeds[0])), Some(10_000))
        .expect("post-kill request");
    assert!(fresh.ok, "victim's key served by its successor");
    let again = client
        .call(Request::Simulate(spec(seeds[0])), Some(10_000))
        .expect("post-kill repeat");
    assert!(
        again.ok && again.cached,
        "successor's cache answers the repeat"
    );

    // The router saw the death: failovers counted, one shard unreachable.
    let stats = client.call(Request::Stats, Some(5_000)).expect("stats");
    let router_stats = stats
        .result
        .as_ref()
        .and_then(|v| v.get("router"))
        .cloned()
        .expect("router sub-object");
    let n = |k: &str| {
        router_stats
            .get(k)
            .and_then(doppio::engine::json::Value::as_u64)
            .unwrap_or(0)
    };
    assert!(n("failovers") >= 1, "failovers recorded: {router_stats:?}");
    assert_eq!(n("shards_ok"), 2, "one shard is gone: {router_stats:?}");

    proxy.stop();
    router.shutdown();
    router.join();
}

/// The self-healing loop end to end: `SIGKILL` the shard that owns the
/// `terasort` learner, let the supervisor restart it and the router warm
/// it back into the ring, and demand that post-restart corrected
/// predictions are byte-identical to the pre-kill ones. That identity is
/// only possible if three things all held: the learner snapshot survived
/// the kill (written before every ack), the restarted process restored it
/// before reporting ready, and re-admission handed the workload back to
/// its *original* owner (same vnodes, same placement).
#[test]
fn killed_learn_owner_restarts_readmits_and_stays_byte_identical() {
    use doppio::engine::FingerprintBuilder;
    use doppio::learn::RunObservation;
    use doppio::serve::ring::DEFAULT_VNODES;
    use doppio::serve::{
        spawn_tier, start_router, HashRing, PredictSpec, RouterConfig, SupervisorConfig, TierSpec,
    };

    let observations: Vec<RunObservation> = include_str!("fixtures/observations_slowdisk.ndjson")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| RunObservation::parse_line(l).expect("fixture line parses"))
        .collect();
    let n_obs = observations.len() as u64;

    let snapshot_dir =
        std::env::temp_dir().join(format!("doppio-restart-chaos-{}", std::process::id()));
    let mut tier = spawn_tier(&TierSpec {
        exe: env!("CARGO_BIN_EXE_doppio").into(),
        shards: 4,
        workers_per_shard: 1,
        snapshot_dir: Some(snapshot_dir.clone()),
        ..TierSpec::default()
    })
    .expect("tier starts");
    let router = start_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: tier.addrs(),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(100),
            probe_budget: 1,
        },
        // Test-paced warm-up: two consecutive ready probes, 10 ms apart.
        warmup_successes: 2,
        warmup_interval_ms: 10,
        ..RouterConfig::default()
    })
    .expect("router starts");
    let controller = router.controller();
    tier.supervise(
        SupervisorConfig {
            poll_interval: Duration::from_millis(10),
            // The jittered floor (base/2 = 100 ms) keeps the down-window
            // probe below honest: the restart cannot beat it.
            backoff_base: Duration::from_millis(200),
            backoff_max: Duration::from_millis(400),
            ..SupervisorConfig::default()
        },
        move |ev| controller.on_shard_event(&ev),
    );

    // Owner placement is a pure function of the ring, so the victim — the
    // shard holding the terasort learner — is known up front.
    let owner_fp = {
        let mut fp = FingerprintBuilder::new();
        fp.write_str("learn-owner");
        fp.write_str("terasort");
        fp.write_bool(false);
        fp.finish()
    };
    let victim = HashRing::new(&[0, 1, 2, 3], DEFAULT_VNODES).shard_for(&owner_fp) as usize;

    let corrected_spec = || PredictSpec {
        workload: Workload::Terasort,
        nodes: 3,
        cores: 8,
        config: HybridConfig::HddHdd,
        paper: false,
        profile_nodes: 3,
        corrected: true,
    };
    // The reply's rendered result payload: everything after `"result": `
    // minus the envelope's closing brace is the evaluation verbatim.
    let payload = |raw: &str| -> String {
        let (_, after) = raw
            .split_once("\"result\": ")
            .expect("ok reply carries a result");
        after[..after.len() - 1].to_string()
    };

    let mut client = Client::connect(router.addr()).expect("client connects");
    for obs in observations {
        let reply = client
            .call(Request::Observe(obs), Some(10_000))
            .expect("observe reply");
        assert!(reply.ok, "observe failed: {:?}", reply.error_message);
    }
    let before = client
        .call(Request::Predict(corrected_spec()), Some(10_000))
        .expect("pre-kill corrected predict");
    assert!(before.ok, "pre-kill predict: {:?}", before.error_message);
    let before_payload = payload(&before.raw);

    // The whole kill → restart → re-admit cycle runs under hostile wire
    // load: a disconnect-heavy proxy between a retrying client and the
    // router, driving idempotent simulates across the ownership flips.
    let mut proxy = ChaosProxy::start(router.addr(), ChaosProfile::DisconnectHeavy, 0xC4A0_9000)
        .expect("chaos proxy");
    let chaos_seeds = [71u64, 72, 73, 74];
    let chaos_expected: Vec<String> = chaos_seeds.iter().map(|&s| expected_payload(s)).collect();
    let proxy_addr = proxy.addr().to_string();
    let rounds = 8usize;

    let outcomes: Vec<(u64, Result<doppio::serve::Reply, CallError>)> =
        std::thread::scope(|scope| {
            let load = scope.spawn(move || {
                let mut rc = retrying(proxy_addr, 0x5EED_9000);
                let mut out = Vec::with_capacity(rounds * chaos_seeds.len());
                for _ in 0..rounds {
                    for &seed in &chaos_seeds {
                        let mut outcome = rc.call(Request::Simulate(spec(seed)), Some(10_000));
                        let mut waits = 0;
                        while matches!(outcome, Err(CallError::CircuitOpen { .. })) && waits < 50 {
                            std::thread::sleep(Duration::from_millis(20));
                            waits += 1;
                            outcome = rc.call(Request::Simulate(spec(seed)), Some(10_000));
                        }
                        out.push((seed, outcome));
                    }
                }
                out
            });

            tier.kill_shard(victim); // SIGKILL, no drain, mid-load

            // While the owner is down its learner is unreachable *by
            // design*: owner-pinned requests fail fast rather than fail
            // over, because a failover would fork the corrector state
            // onto a second shard.
            // (A connection-level error is an equally terminal outcome.)
            if let Ok(r) = client.call(Request::Predict(corrected_spec()), Some(2_000)) {
                assert!(
                    !r.ok,
                    "corrected predict cannot succeed against a dead owner: {}",
                    r.raw
                );
            }

            // Tier health flips ready only when every shard is back in
            // the active ring, so one bounded poll loop covers restart +
            // warm-up.
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                let h = client
                    .call(Request::Health, Some(5_000))
                    .expect("health reply");
                let result = h.result.as_ref().expect("health payload");
                let b = |k: &str| {
                    result
                        .get(k)
                        .and_then(doppio::engine::json::Value::as_bool)
                        .unwrap_or(false)
                };
                let u = |k: &str| {
                    result
                        .get(k)
                        .and_then(doppio::engine::json::Value::as_u64)
                        .unwrap_or(0)
                };
                if b("ready") && u("restarts") >= 1 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "shard was not re-admitted within the budget: {result:?}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            load.join().expect("load thread")
        });
    assert_eq!(tier.restarts()[victim], 1, "exactly one restart, no flap");

    // Every chaos-load request id resolved to exactly one semantic
    // outcome across the kill, the downtime and the ownership flip back —
    // and every *success* carries the in-process bytes.
    assert_eq!(outcomes.len(), rounds * chaos_seeds.len());
    let mut successes = 0u32;
    for (seed, outcome) in &outcomes {
        match outcome {
            Ok(reply) if reply.ok => {
                successes += 1;
                let want = &chaos_expected[chaos_seeds.iter().position(|s| s == seed).unwrap()];
                assert!(
                    reply.raw.ends_with(&format!("\"result\": {want}}}")),
                    "seed {seed}: bytes diverge across the restart cycle\n  raw: {}",
                    reply.raw
                );
            }
            Ok(reply) => assert!(
                reply.error_code.is_some(),
                "seed {seed}: error reply without a code: {}",
                reply.raw
            ),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    assert!(
        successes > 0,
        "retries must get requests through the chaos proxy"
    );
    proxy.stop();

    // The restored corrector serves byte-identical corrected predictions.
    let after = client
        .call(Request::Predict(corrected_spec()), Some(10_000))
        .expect("post-restart corrected predict");
    assert!(after.ok, "post-restart predict: {:?}", after.error_message);
    assert_eq!(
        payload(&after.raw),
        before_payload,
        "corrected prediction bytes diverged across the restart — \
         learner state did not survive"
    );

    // Counters agree: the version invariant (one fit per ingest) survived
    // the snapshot round trip, and the tier is whole again.
    let stats = client.call(Request::Stats, Some(5_000)).expect("stats");
    let result = stats.result.expect("stats payload");
    assert_eq!(
        result
            .get("corrector_version")
            .and_then(doppio::engine::json::Value::as_u64),
        Some(n_obs),
        "restored corrector version equals total ingests"
    );
    let router_stats = result.get("router").expect("router sub-object");
    let ru = |k: &str| {
        router_stats
            .get(k)
            .and_then(doppio::engine::json::Value::as_u64)
            .unwrap_or(0)
    };
    assert!(ru("restarts") >= 1, "router counted the restart");
    assert_eq!(ru("active_shards"), 4, "all four shards active again");

    router.shutdown();
    router.join();
    drop(tier);
    let _ = std::fs::remove_dir_all(&snapshot_dir);
}

#[test]
fn dead_endpoint_fails_fast_once_the_breaker_opens() {
    // Bind then immediately free a port: connecting to it refuses fast.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let mut rc = RetryingClient::new(
        addr.to_string(),
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            read_timeout: Some(Duration::from_millis(250)),
            write_timeout: Some(Duration::from_millis(250)),
        },
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(10), // stays open for the test
            probe_budget: 1,
        },
        7,
    );

    // First call: both attempts fail at connect, tripping the breaker.
    match rc.call(Request::Stats, None) {
        Err(CallError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(
        rc.breaker().opened(),
        1,
        "two failures trip a threshold of 2"
    );

    // Open breaker: rejections must be microsecond-cheap, not
    // per-call connect timeouts.
    let t0 = Instant::now();
    for _ in 0..100 {
        assert!(matches!(
            rc.call(Request::Stats, None),
            Err(CallError::CircuitOpen { .. })
        ));
    }
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "100 fast-failures took {:?} — the breaker is not shedding",
        t0.elapsed()
    );
    assert_eq!(rc.breaker().fast_failures(), 100);
    assert_eq!(
        rc.metrics().attempts,
        2,
        "no attempt touched the dead endpoint again"
    );
}
