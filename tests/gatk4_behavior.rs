//! Cross-crate integration: the GATK4 pipeline reproduces the paper's
//! Section-III observations end to end (scaled dataset, full stack:
//! workloads → sparksim → cluster → storage → events).

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::events::Bytes;
use doppio::sparksim::{AppRun, IoChannel, Simulation, SparkConf};
use doppio::workloads::gatk4;

fn run(config: HybridConfig, cores: u32) -> AppRun {
    let app = gatk4::app(&gatk4::Params::scaled_down());
    let cluster = ClusterSpec::paper_cluster(3, 36, config);
    Simulation::with_conf(
        cluster,
        SparkConf::paper().with_cores(cores).without_noise(),
    )
    .run(&app)
    .expect("GATK4 simulates")
}

/// Paper observation 1: switching the HDFS folder from HDD to SSD brings
/// no gain for MD, some for BR, most for SF.
#[test]
fn observation1_hdfs_device_sensitivity_ordering() {
    let ssd = run(HybridConfig::SsdSsd, 36);
    let hdd_hdfs = run(HybridConfig::HddSsd, 36);
    let slowdown = |name: &str| {
        hdd_hdfs.stage(name).unwrap().duration.as_secs()
            / ssd.stage(name).unwrap().duration.as_secs()
    };
    let md = slowdown("MD");
    let br = slowdown("BR");
    let sf = slowdown("SF");
    assert!(md < 1.10, "MD insensitive: {md:.2}x");
    assert!(
        sf > br,
        "SF (which also writes to HDFS) suffers most: sf={sf:.2} br={br:.2}"
    );
    assert!(sf > 1.5, "SF heavily HDFS-bound: {sf:.2}x");
}

/// Paper observation 2: switching Spark-local from SSD to HDD moves the
/// dominant cost into BR and SF.
#[test]
fn observation2_local_device_dominates() {
    let ssd = run(HybridConfig::SsdSsd, 36);
    let hdd_local = run(HybridConfig::SsdHdd, 36);
    let ratio = |r: &AppRun, name: &str| r.stage(name).unwrap().duration.as_secs();
    // On HDD local, BR and SF take roughly equally long (both re-read the
    // same shuffle at the same crippled bandwidth).
    let br = ratio(&hdd_local, "BR");
    let sf = ratio(&hdd_local, "SF");
    assert!((br - sf).abs() / br < 0.15, "BR {br:.0}s vs SF {sf:.0}s");
    // And each is several times its SSD-local time.
    assert!(br / ratio(&ssd, "BR") > 3.0);
    assert!(sf / ratio(&ssd, "SF") > 3.0);
}

/// Paper observation 3: Spark-local is much more I/O-sensitive than HDFS.
#[test]
fn observation3_local_more_sensitive_than_hdfs() {
    let ssd = run(HybridConfig::SsdSsd, 36);
    let hdd_local = run(HybridConfig::SsdHdd, 36);
    let hdd_hdfs = run(HybridConfig::HddSsd, 36);
    let total = |r: &AppRun| r.total_time().as_secs();
    let local_penalty = total(&hdd_local) / total(&ssd);
    let hdfs_penalty = total(&hdd_hdfs) / total(&ssd);
    assert!(
        local_penalty > 2.0 * hdfs_penalty,
        "local penalty {local_penalty:.1}x vs hdfs penalty {hdfs_penalty:.1}x"
    );
}

/// Figure 3: on 2SSD, BR/SF scale with the core count; on 2HDD they don't.
#[test]
fn core_scaling_depends_on_device() {
    let ssd12 = run(HybridConfig::SsdSsd, 12);
    let ssd36 = run(HybridConfig::SsdSsd, 36);
    let hdd12 = run(HybridConfig::HddHdd, 12);
    let hdd36 = run(HybridConfig::HddHdd, 36);
    let br = |r: &AppRun| r.stage("BR").unwrap().duration.as_secs();
    assert!(br(&ssd12) / br(&ssd36) > 2.0, "BR scales on SSD");
    let hdd_change = (br(&hdd36) / br(&hdd12) - 1.0).abs();
    assert!(
        hdd_change < 0.12,
        "BR flat on HDD: {:.0}%",
        hdd_change * 100.0
    );
}

/// Table IV: the uncacheable markedReads RDD forces BR and SF to re-read
/// both the shuffle output and the input file.
#[test]
fn table4_io_accounting() {
    let params = gatk4::Params::scaled_down();
    let r = run(HybridConfig::SsdSsd, 8);
    let shuffle = params.dataset.shuffle_bytes();
    let close = |a: Bytes, b: Bytes| (a.as_f64() - b.as_f64()).abs() / b.as_f64() < 0.03;
    assert!(close(
        r.stage("MD")
            .unwrap()
            .channel_bytes(IoChannel::ShuffleWrite),
        shuffle
    ));
    assert!(close(
        r.stage("BR").unwrap().channel_bytes(IoChannel::ShuffleRead),
        shuffle
    ));
    assert!(close(
        r.stage("SF").unwrap().channel_bytes(IoChannel::ShuffleRead),
        shuffle
    ));
    // Shuffle is written once but read twice across the app.
    let total_read = r.total_channel_bytes(IoChannel::ShuffleRead);
    assert!(close(total_read, shuffle * 2));
}

/// The shuffle-read request size stays in the tens-of-KB regime that
/// separates HDD from SSD behaviour.
#[test]
fn shuffle_read_requests_are_small() {
    let r = run(HybridConfig::SsdSsd, 8);
    let rs = r
        .stage("BR")
        .unwrap()
        .channel(IoChannel::ShuffleRead)
        .avg_request_size()
        .expect("BR reads shuffle data");
    assert!(rs < Bytes::from_kib(64), "segment = {rs}");
    // While shuffle write stays in the hundreds-of-MB regime.
    let ws = r
        .stage("MD")
        .unwrap()
        .channel(IoChannel::ShuffleWrite)
        .avg_request_size()
        .expect("MD writes shuffle data");
    assert!(ws > Bytes::from_mib(64), "write chunk = {ws}");
}
