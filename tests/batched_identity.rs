//! Batched execution is a wall-clock optimization, never a semantic one:
//! `ScenarioSet::run_batched` must produce f64-bit-identical `AppRun`s to
//! the serial path and to `par_map` fan-out at every batch width — for
//! clean plans, fault-injected plans, and degraded-disk windows alike —
//! and a batch of identical scenarios must cost one simulation plus
//! cache hits, not K simulations.

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::engine::Engine;
use doppio::scenario::{Scenario, ScenarioSet};
use doppio::sparksim::{AppRun, FaultPlan, FaultProfile, IoChannel, SparkConf};
use doppio::workloads::terasort;
use proptest::prelude::*;

/// Every batch width the harness exercises: degenerate (1), smaller than
/// the set, equal to it, larger than it, and a prime that straddles the
/// set boundary so the tail batch is short.
const WIDTHS: [usize; 5] = [1, 2, 3, 8, 17];

fn scenario_set(seeds: &[u64]) -> ScenarioSet {
    ScenarioSet::seeded_replicas(
        "terasort",
        terasort::app(&terasort::Params::scaled_down()),
        ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd),
        SparkConf::paper().with_cores(8),
        seeds,
    )
}

/// Stage-by-stage comparison at f64 bit granularity: a last-ulp
/// reduction-order difference between the batched and serial event loops
/// fails loudly, not within an epsilon.
fn assert_bit_identical(a: &[AppRun], b: &[AppRun], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: run count");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(
            ra.total_time().as_secs().to_bits(),
            rb.total_time().as_secs().to_bits(),
            "{what}: total time bits"
        );
        for (sa, sb) in ra.stages().iter().zip(rb.stages()) {
            assert_eq!(sa.name, sb.name, "{what}");
            assert_eq!(
                sa.duration.as_secs().to_bits(),
                sb.duration.as_secs().to_bits(),
                "{what}: stage '{}' duration bits",
                sa.name
            );
            assert_eq!(
                sa.tasks.avg_secs.to_bits(),
                sb.tasks.avg_secs.to_bits(),
                "{what}: stage '{}' t_avg bits",
                sa.name
            );
            for ch in IoChannel::DISK_CHANNELS {
                assert_eq!(sa.channel(ch), sb.channel(ch), "{what}: {} {ch}", sa.name);
            }
        }
        assert_eq!(ra, rb, "{what}: full metric structs");
    }
}

/// Serial `run_all`, threaded `par_map` fan-out, and `run_batched` at
/// every width in [`WIDTHS`] agree to the bit on clean plans.
#[test]
fn clean_plans_are_batch_width_invariant() {
    let seeds = [41u64, 42, 43, 44, 45];
    let serial = scenario_set(&seeds)
        .run_all(&Engine::serial())
        .expect("serial batch runs");
    let fanned = scenario_set(&seeds)
        .run_all(&Engine::with_jobs(3))
        .expect("par_map batch runs");
    assert_bit_identical(&serial, &fanned, "par_map vs serial");
    for width in WIDTHS {
        for jobs in [1usize, 3] {
            let batched = scenario_set(&seeds)
                .run_batched(&Engine::with_jobs(jobs), width)
                .expect("batched runs");
            assert_bit_identical(&serial, &batched, &format!("width {width}, jobs {jobs}"));
        }
    }
}

/// Reusable fault plans (no executor loss) go through the shared-plan
/// path; the injected faults must replay bit-identically at every width.
#[test]
fn fault_injected_plans_are_batch_width_invariant() {
    let seeds = [7u64, 8, 9];
    let plan = FaultProfile::FlakyTasks.plan(5, 3, 60.0);
    let serial = scenario_set(&seeds)
        .with_fault_plan(plan.clone())
        .run_all(&Engine::serial())
        .expect("serial faulty batch runs");
    assert!(
        !serial[0].total_faults().is_clean(),
        "the plan actually injected something"
    );
    for width in WIDTHS {
        let batched = scenario_set(&seeds)
            .with_fault_plan(plan.clone())
            .run_batched(&Engine::serial(), width)
            .expect("batched faulty runs");
        assert_bit_identical(&serial, &batched, &format!("flaky-tasks, width {width}"));
    }
}

/// Degraded-disk windows (`DiskSlowdown` events) change device rates
/// mid-run — exactly the state the deferred pump-log replays — so they
/// get their own width sweep.
#[test]
fn degraded_disk_windows_are_batch_width_invariant() {
    let seeds = [31u64, 32, 33];
    let plan = FaultProfile::SlowDisk.plan(11, 3, 60.0);
    let serial = scenario_set(&seeds)
        .with_fault_plan(plan.clone())
        .run_all(&Engine::serial())
        .expect("serial degraded batch runs");
    for width in WIDTHS {
        let batched = scenario_set(&seeds)
            .with_fault_plan(plan.clone())
            .run_batched(&Engine::serial(), width)
            .expect("batched degraded runs");
        assert_bit_identical(&serial, &batched, &format!("slow-disk, width {width}"));
    }
}

/// Executor-loss plans cannot share a pre-built plan (later jobs' plans
/// depend on which lineage was lost); `run_batched` must fall back to
/// the interleaved path lane-by-lane and still match serial to the bit.
#[test]
fn executor_loss_plans_fall_back_bit_identically() {
    let seeds = [21u64, 22];
    let plan = FaultProfile::ExecutorLoss.plan(3, 3, 60.0);
    let serial = scenario_set(&seeds)
        .with_fault_plan(plan.clone())
        .run_all(&Engine::serial())
        .expect("serial loss batch runs");
    for width in WIDTHS {
        let batched = scenario_set(&seeds)
            .with_fault_plan(plan.clone())
            .run_batched(&Engine::serial(), width)
            .expect("batched loss runs");
        assert_bit_identical(&serial, &batched, &format!("executor-loss, width {width}"));
    }
}

/// One batch mixing clean, degraded-disk and executor-loss lanes: plan
/// sharing must not bleed one lane's faults (or its plan-reuse decision)
/// into a neighbour.
#[test]
fn mixed_fault_lanes_in_one_batch_do_not_bleed() {
    let base = scenario_set(&[1]).scenarios()[0].clone();
    let lanes: Vec<Scenario> = vec![
        Scenario {
            faults: FaultPlan::empty(),
            ..base.clone()
        },
        Scenario {
            faults: FaultProfile::SlowDisk.plan(11, 3, 60.0),
            ..base.clone()
        },
        Scenario {
            faults: FaultProfile::ExecutorLoss.plan(3, 3, 60.0),
            ..base.clone()
        },
        Scenario {
            faults: FaultPlan::empty(),
            ..base
        },
    ];
    let serial = ScenarioSet::new(lanes.clone())
        .run_all(&Engine::serial())
        .expect("serial mixed batch runs");
    // One wide batch holds all four lanes at once.
    let batched = ScenarioSet::new(lanes)
        .run_batched(&Engine::serial(), 4)
        .expect("batched mixed runs");
    assert_bit_identical(&serial, &batched, "mixed fault lanes");
    assert_eq!(serial[0], serial[3], "the two clean lanes agree");
    assert_ne!(
        serial[0].total_time(),
        serial[2].total_time(),
        "the executor-loss lane actually diverged from clean"
    );
}

/// A batch of K identical scenarios costs one simulation: the first lane
/// misses, the remaining K-1 are served from the memo cache with
/// bit-identical payloads.
#[test]
fn identical_lanes_cost_one_miss_plus_hits() {
    const K: usize = 6;
    let one = scenario_set(&[77]).scenarios()[0].clone();
    let set = ScenarioSet::new(vec![one; K]);
    let results = set
        .run_batched(&Engine::serial(), K)
        .expect("identical batch runs");
    assert_eq!(set.cache_misses(), 1, "first lane simulates");
    assert_eq!(set.cache_hits(), (K - 1) as u64, "remaining lanes hit");
    assert_eq!(set.cached(), 1);
    for r in &results[1..] {
        assert_bit_identical(&results[..1], std::slice::from_ref(r), "cache payload");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch-width invariance over seeded scenario families: for any seed
    /// set, width and thread count, `run_batched` returns exactly the
    /// serial `run_all` results.
    #[test]
    fn run_batched_is_width_invariant_for_any_seed_family(
        seeds in prop::collection::vec(0u64..1_000, 1..5),
        width in 1usize..20,
        jobs in 1usize..4,
    ) {
        let serial = scenario_set(&seeds)
            .run_all(&Engine::serial())
            .expect("serial batch runs");
        let batched = scenario_set(&seeds)
            .run_batched(&Engine::with_jobs(jobs), width)
            .expect("batched runs");
        prop_assert_eq!(&serial, &batched);
        for (a, b) in serial.iter().zip(&batched) {
            prop_assert_eq!(
                a.total_time().as_secs().to_bits(),
                b.total_time().as_secs().to_bits()
            );
        }
    }
}
