//! Fault injection and recovery, end to end: executor loss destroys shuffle
//! output mid-run, lineage recomputes exactly the lost fraction, and the
//! recovered data a later job reads is byte-identical to the fault-free
//! run's. Fault plans are seeded, so every recovery decision replays
//! identically at any scenario-engine width.

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::engine::Engine;
use doppio::events::Bytes;
use doppio::model::whatif::failure_inflation;
use doppio::scenario::ScenarioSet;
use doppio::sparksim::{
    App, AppBuilder, Cost, FaultEvent, FaultPlan, FaultProfile, IoChannel, ShuffleSpec, SimError,
    Simulation, SparkConf,
};
use proptest::prelude::*;

/// One shuffle ("NF") consumed by two count jobs: the second job re-reads
/// the map output the first job produced, so destroying part of it between
/// the jobs forces a lineage recompute.
fn two_pass_app() -> App {
    let mut b = AppBuilder::new("recovery");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(4));
    let sorted = b.sort_by_key(
        src,
        "NF",
        ShuffleSpec::target_reducer_bytes(Bytes::from_mib(64)),
        Cost::ZERO,
        Cost::ZERO,
    );
    b.count(sorted, "first-pass", Cost::ZERO);
    b.count(sorted, "second-pass", Cost::ZERO);
    b.build().expect("app builds")
}

fn cluster() -> ClusterSpec {
    ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd)
}

fn conf() -> SparkConf {
    SparkConf::paper().with_cores(8).without_noise()
}

#[test]
fn executor_loss_recomputes_lost_shuffle_output_byte_identically() {
    let app = two_pass_app();
    let clean = Simulation::with_conf(cluster(), conf())
        .run(&app)
        .expect("clean run simulates");
    let nf_clean = clean
        .stages()
        .iter()
        .find(|s| s.name == "NF")
        .expect("clean run has the map stage");

    // Kill a worker halfway through the map stage (the stage starts at t=0).
    let plan = FaultPlan::new(3).with_event(FaultEvent::ExecutorLoss {
        node: 1,
        at_secs: nf_clean.duration.as_secs() * 0.5,
    });
    let faulty = Simulation::with_conf(cluster(), conf())
        .with_faults(plan)
        .run(&app)
        .expect("faulty run recovers");

    // The lost 1/3 of the map output is recomputed from lineage before the
    // second job runs, in a partial stage the clean run never needed.
    let names: Vec<&str> = faulty.stages().iter().map(|s| s.name.as_str()).collect();
    assert!(
        names.contains(&"NF (recompute)"),
        "lineage recompute stage planned: {names:?}"
    );
    assert!(faulty.total_faults().recomputed_bytes > Bytes::ZERO);

    // The recovered shuffle data the second job reads is byte-identical to
    // the fault-free run's — recovery restores data, not an approximation.
    let shuffle_read = |run: &doppio::sparksim::AppRun, stage: &str| {
        run.stages()
            .iter()
            .find(|s| s.name == stage)
            .map(|s| s.channel(IoChannel::ShuffleRead).bytes)
            .expect("stage exists")
    };
    assert_eq!(
        shuffle_read(&clean, "second-pass"),
        shuffle_read(&faulty, "second-pass"),
        "recomputed shuffle output must match the original byte for byte"
    );

    // Recovery is not free: retries plus the recompute stage cost time.
    assert!(
        faulty.total_time() > clean.total_time(),
        "losing an executor must strictly lengthen the run: {} vs {}",
        faulty.total_time(),
        clean.total_time()
    );
}

#[test]
fn fixed_fault_seed_gives_identical_metrics_at_any_engine_width() {
    let app = two_pass_app();
    let plan = FaultProfile::Chaos.plan(17, 3, 120.0);
    let mk = |jobs: usize| {
        let set = ScenarioSet::seeded_replicas(
            "recovery",
            app.clone(),
            cluster(),
            SparkConf::paper().with_cores(8),
            &[1, 2, 3],
        )
        .with_fault_plan(plan.clone());
        set.run_all(&Engine::with_jobs(jobs)).expect("runs recover")
    };
    let serial = mk(1);
    let parallel = mk(3);
    assert_eq!(
        serial, parallel,
        "fault handling must not depend on engine parallelism"
    );
    // The plan actually did something — otherwise this test is vacuous.
    assert!(!serial[0].total_faults().is_clean());
}

#[test]
fn whatif_failure_inflation_tracks_the_simulated_sweep() {
    // 480 one-second compute tasks over 12 cores: 40 clean waves. Injecting
    // 48 failures at half-task-life wastes 24 task-seconds, so the run
    // inflates by ~24 task-seconds / 480 ≈ 5%; the analytical model prices
    // the same wasted-attempt time from the failure rate alone. It is a
    // lower bound — the simulated makespan also pays for the unlucky core
    // that absorbs more than its share of retries — so the simulation must
    // land at or above the prediction, and near it.
    let mut b = AppBuilder::new("flaky");
    let src = b.parallelize("p", Bytes::from_mib(480), 480);
    b.count(src, "job", Cost::fixed(1.0));
    let app = b.build().unwrap();
    let cluster = ClusterSpec::paper_cluster(3, 4, HybridConfig::SsdSsd);
    let conf = SparkConf::paper().with_cores(4).without_noise();

    let clean = Simulation::with_conf(cluster.clone(), conf.clone())
        .run(&app)
        .unwrap();
    let plan = FaultPlan::new(9).with_event(FaultEvent::TaskFailures {
        stage: None,
        tasks: 48,
        attempts: 1,
        at_fraction: 0.5,
    });
    let faulty = Simulation::with_conf(cluster, conf)
        .with_faults(plan)
        .run(&app)
        .unwrap();
    assert_eq!(faulty.total_faults().task_retries, 48);

    let simulated = faulty.total_time().as_secs() / clean.total_time().as_secs();
    let predicted = failure_inflation(48.0 / 480.0, 0.5, 4);
    assert!(
        simulated >= predicted - 1e-9,
        "the analytical inflation is a lower bound: simulated {simulated:.4}, predicted {predicted:.4}"
    );
    let rel = (simulated - predicted).abs() / (simulated - 1.0);
    assert!(
        rel < 0.5,
        "model tracks the sweep: simulated {simulated:.4}, predicted {predicted:.4}"
    );
}

/// Per-stage logical I/O volumes are part of the application, not of the
/// failure history: whatever a seeded plan injects, every non-recompute
/// stage moves exactly the bytes the clean run moved (retries re-do work,
/// they do not re-count it), and the run terminates — either recovered or
/// cleanly aborted by `spark.task.maxFailures`.
fn volumes_by_stage(run: &doppio::sparksim::AppRun) -> Vec<(String, Vec<u64>)> {
    run.stages()
        .iter()
        .filter(|s| !s.name.ends_with("(recompute)"))
        .map(|s| {
            (
                s.name.clone(),
                IoChannel::DISK_CHANNELS
                    .iter()
                    .map(|&ch| s.channel(ch).bytes.as_u64())
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_seeded_plan_terminates_with_fault_invariant_volumes(
        profile_idx in 0usize..FaultProfile::ALL.len(),
        fault_seed in 0u64..1_000,
        horizon in 10.0f64..200.0,
        extra_failures in 0u64..6,
        attempts in 1u32..3,
    ) {
        let app = two_pass_app();
        let clean = Simulation::with_conf(cluster(), conf())
            .run(&app)
            .expect("clean run simulates");

        let mut plan = FaultProfile::ALL[profile_idx].plan(fault_seed, 3, horizon);
        if extra_failures > 0 {
            plan = plan.with_event(FaultEvent::TaskFailures {
                stage: None,
                tasks: extra_failures,
                attempts,
                at_fraction: 0.4,
            });
        }
        let result = Simulation::with_conf(cluster(), conf().with_speculation())
            .with_faults(plan)
            .run(&app);
        match result {
            Ok(faulty) => prop_assert_eq!(
                volumes_by_stage(&clean),
                volumes_by_stage(&faulty),
                "logical volumes are fault-invariant"
            ),
            // Stacking enough attempts on one task may legitimately exhaust
            // spark.task.maxFailures — that is a clean abort, not a hang.
            Err(SimError::TaskAborted { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
