//! Determinism contract of the disaggregated storage subsystem
//! (DESIGN.md §3.10).
//!
//! Three guarantees: (1) the default `local` profile is a no-op — runs on
//! an explicit `StorageProfile::Local` cluster are f64-bit-identical to
//! runs on a cluster that never mentions storage, at any worker count, so
//! the pre-tiered golden traces stand un-re-blessed; (2) tiered scenarios
//! fingerprint apart from local ones and never alias their cache entries;
//! (3) tiered runs ride the same replay discipline as everything else:
//! `run_batched` matches serial `run_all` to the bit at every width, up
//! to and including a 256-node diskless parallel-FS cluster.

use doppio::cluster::{ClusterSpec, HybridConfig, StorageProfile};
use doppio::engine::{Engine, Fingerprintable};
use doppio::scenario::ScenarioSet;
use doppio::sparksim::{AppRun, IoChannel, SparkConf};
use doppio::workloads::terasort;

fn cluster(nodes: usize, storage: StorageProfile) -> ClusterSpec {
    ClusterSpec::paper_cluster(nodes, 8, HybridConfig::SsdSsd).with_storage(storage)
}

fn scenario_set(cluster: ClusterSpec, seeds: &[u64]) -> ScenarioSet {
    ScenarioSet::seeded_replicas(
        "terasort",
        terasort::app(&terasort::Params::scaled_down()),
        cluster,
        SparkConf::paper().with_cores(8),
        seeds,
    )
}

fn assert_bit_identical(a: &[AppRun], b: &[AppRun], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: run count");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(
            ra.total_time().as_secs().to_bits(),
            rb.total_time().as_secs().to_bits(),
            "{what}: total time bits"
        );
        for (sa, sb) in ra.stages().iter().zip(rb.stages()) {
            assert_eq!(
                sa.duration.as_secs().to_bits(),
                sb.duration.as_secs().to_bits(),
                "{what}: stage '{}' duration bits",
                sa.name
            );
            for ch in IoChannel::DISK_CHANNELS {
                assert_eq!(sa.channel(ch), sb.channel(ch), "{what}: {} {ch}", sa.name);
            }
        }
        assert_eq!(ra, rb, "{what}: full metric structs");
    }
}

/// Golden gate: an explicit `Local` profile is indistinguishable from a
/// cluster built before storage profiles existed — same fingerprints,
/// bit-identical runs at 1 and 4 workers.
#[test]
fn local_profile_is_bit_identical_to_default() {
    let seeds = [1u64, 2, 3];
    let plain = ClusterSpec::paper_cluster(3, 8, HybridConfig::SsdSsd);
    let explicit = cluster(3, StorageProfile::Local);
    assert_eq!(
        plain.fingerprint(),
        explicit.fingerprint(),
        "Local must not shift the cache key of existing runs"
    );
    let baseline = scenario_set(plain, &seeds)
        .run_all(&Engine::serial())
        .expect("baseline runs");
    for jobs in [1usize, 4] {
        let tiered = scenario_set(explicit.clone(), &seeds)
            .run_all(&Engine::with_jobs(jobs))
            .expect("explicit-Local runs");
        assert_bit_identical(
            &baseline,
            &tiered,
            &format!("Local profile, {jobs} workers"),
        );
    }
}

/// A tiered scenario must never be served a local run from the memo
/// cache (or vice versa): every non-local profile shifts the scenario
/// fingerprint.
#[test]
fn tiered_scenarios_never_alias_local_cache_entries() {
    let seeds = [9u64];
    let local_fp =
        scenario_set(cluster(3, StorageProfile::Local), &seeds).scenarios()[0].fingerprint();
    for profile in [
        StorageProfile::s3(),
        StorageProfile::s3_cached(),
        StorageProfile::lustre(),
    ] {
        let fp = scenario_set(cluster(3, profile.clone()), &seeds).scenarios()[0].fingerprint();
        assert_ne!(
            fp,
            local_fp,
            "profile '{}' aliases the local cache entry",
            profile.name()
        );
    }
}

/// The remote tier actually participates: moving the dataset to the
/// object store changes the simulated outcome.
#[test]
fn object_store_changes_the_simulated_runtime() {
    let seeds = [5u64];
    let local = scenario_set(cluster(3, StorageProfile::Local), &seeds)
        .run_all(&Engine::serial())
        .expect("local runs");
    let s3 = scenario_set(cluster(3, StorageProfile::s3()), &seeds)
        .run_all(&Engine::serial())
        .expect("s3 runs");
    assert_ne!(
        local[0].total_time(),
        s3[0].total_time(),
        "the tier must not be a spectator"
    );
}

/// Batched execution over tiered scenarios (object store and cache tier)
/// matches the serial path to the bit at every width — the remote rate
/// domain replays under the same deferred-pump discipline as local disks.
#[test]
fn tiered_batched_matches_serial_bit_identically() {
    let seeds = [11u64, 12, 13];
    for profile in [StorageProfile::s3(), StorageProfile::s3_cached()] {
        let serial = scenario_set(cluster(4, profile.clone()), &seeds)
            .run_all(&Engine::serial())
            .expect("serial tiered runs");
        for width in [1usize, 2, 8] {
            let batched = scenario_set(cluster(4, profile.clone()), &seeds)
                .run_batched(&Engine::with_jobs(3), width)
                .expect("batched tiered runs");
            assert_bit_identical(
                &serial,
                &batched,
                &format!("profile '{}', width {width}", profile.name()),
            );
        }
    }
}

/// The headline scenario the subsystem unlocks: 256 diskless nodes
/// against a shared parallel filesystem. Must simulate deterministically
/// (two serial passes agree) and stay bit-identical under batched
/// multi-worker execution.
#[test]
fn parallel_fs_256_nodes_is_deterministic_and_width_invariant() {
    let seeds = [21u64, 22];
    let first = scenario_set(cluster(256, StorageProfile::lustre()), &seeds)
        .run_all(&Engine::serial())
        .expect("first 256-node pass");
    let second = scenario_set(cluster(256, StorageProfile::lustre()), &seeds)
        .run_all(&Engine::serial())
        .expect("second 256-node pass");
    assert_bit_identical(&first, &second, "256-node lustre, repeated serial");
    for width in [1usize, 2, 4] {
        let batched = scenario_set(cluster(256, StorageProfile::lustre()), &seeds)
            .run_batched(&Engine::with_jobs(4), width)
            .expect("batched 256-node runs");
        assert_bit_identical(&first, &batched, &format!("256-node lustre, width {width}"));
    }
    assert!(
        first[0].total_time().as_secs() > 0.0,
        "the run actually did work"
    );
}
