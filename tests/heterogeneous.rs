//! Heterogeneous clusters: the spec layer allows per-node devices and core
//! counts even though the paper's clusters are uniform — these tests pin
//! down that the whole stack behaves sanely when nodes differ.

use doppio::cluster::{presets, ClusterSpec, DiskRole, HybridConfig};
use doppio::events::Bytes;
use doppio::sparksim::{AppBuilder, Cost, ShuffleSpec, Simulation, SparkConf};

fn shuffle_app() -> doppio::sparksim::App {
    let mut b = AppBuilder::new("mix");
    let src = b.hdfs_source("in", "/in", Bytes::from_gib(6));
    let sh = b.group_by_key(
        src,
        "group",
        ShuffleSpec::target_reducer_bytes(Bytes::from_mib(2)),
        Cost::ZERO,
        1.0,
    );
    b.count(sh, "reduce", Cost::ZERO);
    b.build().unwrap()
}

fn run(cluster: ClusterSpec) -> f64 {
    Simulation::with_conf(cluster, SparkConf::paper().with_cores(16).without_noise())
        .run(&shuffle_app())
        .expect("simulates")
        .total_time()
        .as_secs()
}

/// A cluster with one HDD-local node lands strictly between all-SSD and
/// all-HDD: the slow disk throttles only its share of the shuffle.
#[test]
fn mixed_local_devices_interpolate() {
    let ssd_node = presets::paper_node(36, HybridConfig::SsdSsd);
    let hdd_local_node = ssd_node
        .clone()
        .with_disk(DiskRole::Local, doppio::storage::presets::hdd_wd4000());

    let all_ssd = run(ClusterSpec::homogeneous(3, ssd_node.clone()));
    let all_hdd = run(ClusterSpec::from_nodes(vec![
        hdd_local_node.clone(),
        hdd_local_node.clone(),
        hdd_local_node.clone(),
    ]));
    let mixed = run(ClusterSpec::from_nodes(vec![
        ssd_node.clone(),
        ssd_node,
        hdd_local_node,
    ]));

    assert!(
        all_ssd < mixed && mixed < all_hdd,
        "ssd {all_ssd:.0}s < mixed {mixed:.0}s < hdd {all_hdd:.0}s"
    );
    // The straggling node carries 1/3 of the shuffle at HDD speed, so the
    // mixed cluster sits much closer to the HDD end than the SSD end.
    assert!(
        mixed > all_hdd * 0.25,
        "one slow disk throttles its whole share"
    );
}

/// An NVMe Spark-local directory makes even the 30 KB shuffle regime a
/// non-event — the "what would Figure 2 look like today" experiment.
#[test]
fn nvme_erases_the_shuffle_penalty() {
    let ssd_node = presets::paper_node(36, HybridConfig::SsdSsd);
    let nvme_node = ssd_node
        .clone()
        .with_disk(DiskRole::Local, doppio::storage::presets::nvme_p4510());
    let sata = run(ClusterSpec::homogeneous(3, ssd_node));
    let nvme = run(ClusterSpec::homogeneous(3, nvme_node));
    assert!(nvme <= sata, "NVMe can only help");
}

/// Nodes with different core counts: the executor respects each node's own
/// capacity rather than assuming uniformity.
#[test]
fn mixed_core_counts_respected() {
    let big = presets::paper_node(36, HybridConfig::SsdSsd);
    let small = big.clone().with_cores(4);

    // Executor cores are clamped per node: with conf 16, "small" runs 4.
    let mixed = ClusterSpec::from_nodes(vec![big.clone(), small]);
    let t_mixed = run(mixed);
    let t_two_big = run(ClusterSpec::homogeneous(2, big.clone()));
    let t_one_big = run(ClusterSpec::homogeneous(1, big));
    assert!(
        t_two_big <= t_mixed && t_mixed <= t_one_big * 1.05,
        "two-big {t_two_big:.0}s <= mixed {t_mixed:.0}s <= one-big {t_one_big:.0}s"
    );
}
