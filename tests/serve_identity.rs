//! Served results must be bit-identical to in-process evaluation.
//!
//! The serving layer promises that a `simulate` reply embeds exactly the
//! `doppio-app-run/v1` line that `ScenarioSet::run_all` + `json::app_run`
//! produce in-process — byte for byte, whatever the server's worker
//! count, and again when the reply comes from the cache.

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::engine::Engine;
use doppio::scenario::{Scenario, ScenarioSet};
use doppio::serve::protocol::workload_name;
use doppio::serve::{start, Client, Request, ServeConfig, SimulateSpec};
use doppio::sparksim::{json, FaultPlan, FaultProfile, SparkConf};
use doppio::workloads::Workload;

/// The wire requests under test and their in-process twins.
fn specs() -> Vec<SimulateSpec> {
    let base = SimulateSpec {
        workload: Workload::Terasort,
        nodes: 2,
        cores: 4,
        config: HybridConfig::SsdSsd,
        seed: 42,
        paper: false,
        inject: None,
        fault_seed: 7,
    };
    vec![
        base.clone(),
        SimulateSpec {
            seed: 43,
            config: HybridConfig::SsdHdd,
            ..base.clone()
        },
        SimulateSpec {
            workload: Workload::PageRank,
            nodes: 3,
            ..base.clone()
        },
        // The fault-injection path: plan derived from the clean run's
        // horizon, exactly as `doppio simulate --inject` does.
        SimulateSpec {
            inject: Some(FaultProfile::Chaos),
            fault_seed: 11,
            ..base
        },
    ]
}

/// Builds the in-process scenario equivalent to a wire spec.
fn scenario_for(s: &SimulateSpec) -> Scenario {
    let app = s.workload.scaled_app();
    let cluster = ClusterSpec::paper_cluster(s.nodes, 36, s.config);
    let conf = SparkConf::paper().with_cores(s.cores).with_seed(s.seed);
    let faults = match s.inject {
        None => FaultPlan::empty(),
        Some(profile) => {
            let clean = Scenario {
                workload: workload_name(s.workload).to_string(),
                app: app.clone(),
                cluster: cluster.clone(),
                conf: conf.clone(),
                faults: FaultPlan::empty(),
            }
            .run()
            .expect("clean horizon run");
            profile.plan(s.fault_seed, s.nodes, clean.total_time().as_secs())
        }
    };
    Scenario {
        workload: workload_name(s.workload).to_string(),
        app,
        cluster,
        conf,
        faults,
    }
}

/// In-process ground truth: `ScenarioSet::run_all` rendered through the
/// stable `doppio-app-run/v1` serializer.
fn expected_payloads() -> Vec<String> {
    let set = ScenarioSet::new(specs().iter().map(scenario_for).collect());
    set.run_all(&Engine::serial())
        .expect("in-process batch runs")
        .iter()
        .map(|run| json::app_run(run).render_line())
        .collect()
}

fn assert_server_matches(workers: usize, expected: &[String]) {
    let handle = start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    for (spec, want) in specs().into_iter().zip(expected) {
        let reply = client
            .call(Request::Simulate(spec.clone()), None)
            .expect("simulate reply");
        assert!(reply.ok, "simulate failed: {:?}", reply.error_message);
        assert!(!reply.cached, "first evaluation cannot be a cache hit");
        // Bit-identity: `result` is the reply's final field and the server
        // embeds the rendered payload verbatim, so the raw line must end
        // with the exact in-process bytes.
        assert!(
            reply.raw.ends_with(&format!("\"result\": {want}}}")),
            "served bytes diverge from in-process render at {workers} worker(s)\n  spec: {spec:?}\n  raw: {}",
            reply.raw
        );

        // A repeat of the same request is a cache hit carrying the very
        // same payload bytes.
        let again = client
            .call(Request::Simulate(spec), None)
            .expect("cached reply");
        assert!(again.ok && again.cached, "repeat must be served from cache");
        assert!(
            again.raw.ends_with(&format!("\"result\": {want}}}")),
            "cached bytes diverge from in-process render"
        );
    }
    handle.join();
}

#[test]
fn served_replies_are_bit_identical_to_in_process_runs() {
    let expected = expected_payloads();
    // One worker (fully serialized) and four workers (queue + singleflight
    // + cache racing) must both reproduce the in-process bytes.
    assert_server_matches(1, &expected);
    assert_server_matches(4, &expected);
}

/// The shard tier keeps the same promise. Whatever the shard count, a
/// reply routed through the consistent-hash router carries exactly the
/// in-process bytes — placement, hot-key fan-out, and the router's
/// verbatim payload splice are all invisible in the output.
#[test]
fn routed_replies_are_bit_identical_at_every_shard_count() {
    use doppio::serve::{start_router, RouterConfig};
    let expected = expected_payloads();
    for shard_count in [1usize, 2, 4] {
        let shards: Vec<_> = (0..shard_count)
            .map(|_| {
                start(ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                })
                .expect("shard starts")
            })
            .collect();
        let router = start_router(RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: shards.iter().map(|s| s.addr()).collect(),
            ..RouterConfig::default()
        })
        .expect("router starts");
        let mut client = Client::connect(router.addr()).expect("client connects");

        for (spec, want) in specs().into_iter().zip(&expected) {
            let reply = client
                .call(Request::Simulate(spec.clone()), None)
                .expect("routed reply");
            assert!(
                reply.ok,
                "routed simulate failed: {:?}",
                reply.error_message
            );
            assert!(
                reply.raw.ends_with(&format!("\"result\": {want}}}")),
                "routed bytes diverge from in-process render at {shard_count} shard(s)\n  spec: {spec:?}\n  raw: {}",
                reply.raw
            );
            // The owning shard's cache answers the repeat with the very
            // same bytes, and the router surfaces the cached flag.
            let again = client
                .call(Request::Simulate(spec), None)
                .expect("cached routed reply");
            assert!(
                again.ok && again.cached,
                "repeat must hit the owning shard's cache"
            );
            assert!(
                again.raw.ends_with(&format!("\"result\": {want}}}")),
                "cached routed bytes diverge at {shard_count} shard(s)"
            );
        }

        drop(client);
        router.shutdown();
        router.join();
        for shard in shards {
            shard.shutdown();
            shard.join();
        }
    }
}

#[test]
fn concurrent_duplicate_requests_share_one_payload() {
    let handle = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");

    // Four connections pipeline the same request at once; whether each
    // reply was evaluated, coalesced or cached, the payload bytes match.
    let spec = specs().remove(0);
    let payloads: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let reply = client
                        .call(Request::Simulate(spec), None)
                        .expect("simulate reply");
                    assert!(reply.ok, "simulate failed: {:?}", reply.error_message);
                    reply.raw
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let want = json::app_run(&scenario_for(&spec).run().expect("in-process run")).render_line();
    for raw in &payloads {
        assert!(
            raw.ends_with(&format!("\"result\": {want}}}")),
            "concurrent reply diverges from in-process render: {raw}"
        );
    }
    handle.join();
}
