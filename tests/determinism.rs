//! Reproducibility: the whole stack is deterministic per seed — identical
//! metrics, identical calibrated models — and seeds genuinely matter.

use doppio::cluster::{presets, ClusterSpec, HybridConfig};
use doppio::model::{Calibrator, SimPlatform};
use doppio::sparksim::{AppRun, Simulation, SparkConf};
use doppio::workloads::Workload;

fn run_with_seed(w: Workload, seed: u64) -> AppRun {
    let app = w.scaled_app();
    let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdHdd);
    Simulation::with_conf(cluster, SparkConf::paper().with_cores(12).with_seed(seed))
        .run(&app)
        .expect("simulates")
}

#[test]
fn identical_seeds_give_identical_runs() {
    for w in [Workload::Gatk4, Workload::Terasort, Workload::PageRank] {
        let a = run_with_seed(w, 7);
        let b = run_with_seed(w, 7);
        assert_eq!(a, b, "{w} must be bit-identical per seed");
    }
}

#[test]
fn different_seeds_change_timing_but_not_volumes() {
    let a = run_with_seed(Workload::Terasort, 1);
    let b = run_with_seed(Workload::Terasort, 2);
    assert_ne!(
        a.total_time(),
        b.total_time(),
        "compute jitter must respond to the seed"
    );
    for ch in doppio::sparksim::IoChannel::DISK_CHANNELS {
        assert_eq!(a.total_channel_bytes(ch), b.total_channel_bytes(ch));
    }
    // Jitter is small (3% noise): totals agree within a few percent.
    let rel =
        (a.total_time().as_secs() - b.total_time().as_secs()).abs() / a.total_time().as_secs();
    assert!(rel < 0.05, "seeds perturb, not upend: {rel:.3}");
}

#[test]
fn calibration_is_deterministic() {
    let mk = || {
        let platform = SimPlatform::new(
            Workload::Svm.scaled_app(),
            presets::paper_node(36, HybridConfig::SsdSsd),
            3,
            SparkConf::paper(),
        );
        Calibrator::default()
            .calibrate(&platform, "svm")
            .expect("calibrates")
            .model
    };
    assert_eq!(mk(), mk());
}

#[test]
fn noiseless_runs_ignore_the_seed() {
    let app = Workload::Svm.scaled_app();
    let mk = |seed: u64| {
        let cluster = ClusterSpec::paper_cluster(2, 36, HybridConfig::SsdSsd);
        Simulation::with_conf(
            cluster,
            SparkConf::paper()
                .with_cores(8)
                .with_seed(seed)
                .without_noise(),
        )
        .run(&app)
        .expect("simulates")
    };
    assert_eq!(mk(1), mk(2), "without noise the seed is irrelevant");
}
