//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait over ranges,
//! tuples, `prop::sample::select`, `prop::collection::vec`, `prop_map`,
//! `any`, the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports its inputs and panics; it is
//!   not minimized.
//! * **Deterministic by default.** Cases derive from a fixed seed and the
//!   test name, so every run (and CI) explores the same inputs. Set
//!   `PROPTEST_SEED=<u64>` to explore a different stream.

#![forbid(unsafe_code)]

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange};

/// The per-case random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Draws from a range (uniform).
    pub fn draw<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.random_range(range)
    }

    /// Draws a full-distribution value.
    pub fn draw_std<T: rand::Standard>(&mut self) -> T {
        self.0.random::<T>()
    }
}

/// Runner configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps simulation-heavy properties
        // affordable while still exploring the space. Heavy suites override
        // with `with_cases` anyway.
        ProptestConfig { cases: 64 }
    }
}

/// A generation strategy: how to produce random values of `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.draw(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.draw(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.draw(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: fmt::Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.draw_std::<bool>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.draw_std::<u32>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.draw_std::<u64>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.draw_std::<f64>()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::sample` — drawing from explicit value lists.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + fmt::Debug>(Vec<T>);

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.draw(0..self.0.len())].clone()
        }
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.draw(self.size.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::{ProptestConfig, TestRng};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `body` against `config.cases` deterministic random cases.
    ///
    /// `body` receives the per-case RNG and returns a rendering of the
    /// drawn inputs (shown if the case panics).
    pub fn run(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        let seed = base_seed(test_name);
        for case in 0..config.cases {
            let mut rng = TestRng(StdRng::seed_from_u64(seed.wrapping_add(case as u64)));
            body(&mut rng);
        }
    }

    fn base_seed(test_name: &str) -> u64 {
        let user: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xD0_99_10);
        // FNV-1a over the test name decorrelates sibling properties.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ user;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The `prop::` namespace (`prop::sample::select`,
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Checks a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(&__config, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)+
                    let __case = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(panic) = __result {
                        eprintln!("proptest: property '{}' failed for case: {}", stringify!($name), __case);
                        ::std::panic::resume_unwind(panic);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples/maps compose.
        fn composed_strategies(
            ab in (1u64..10, 0.5f64..2.0).prop_map(|(x, y)| (x * 2, y)),
            v in prop::collection::vec(0u32..5, 1..4),
            pick in prop::sample::select(vec!["x", "y"]),
            flag in any::<bool>(),
        ) {
            let (a, b) = ab;
            prop_assert!((2..20).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(pick == "x" || pick == "y");
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (1u64..100, 0.0f64..1.0);
        let run = || {
            let mut out = Vec::new();
            crate::test_runner::run(&ProptestConfig::with_cases(10), "det", |rng| {
                out.push(s.new_value(rng));
            });
            out
        };
        assert_eq!(run(), run());
    }
}
