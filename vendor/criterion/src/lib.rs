//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal harness covering the API `benches/micro_kernel.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`]
//! (both forms) and [`criterion_main!`]. It reports mean/min wall-clock
//! per iteration — no statistical analysis, outlier detection, or HTML
//! reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        let n = b.per_iter.len().max(1);
        let mean = b.per_iter.iter().sum::<f64>() / n as f64;
        let min = b.per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12} min {:>12} ({} samples)",
            fmt_secs(mean),
            fmt_secs(if min.is_finite() { min } else { 0.0 }),
            n
        );
        self
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, recording per-iteration wall-clock means.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget = self.budget.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((sample_budget / per.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.per_iter
                .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
    }

    #[test]
    fn bench_function_records_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| ()));
        }
        criterion_group! {
            name = g;
            config = quick();
            targets = target
        }
        g();
    }
}
