//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of the `rand` API it actually
//! uses (DESIGN.md §6 keeps the approved dependency list at
//! `rand`/`proptest`/`criterion`). The generator is xoshiro256** seeded
//! via SplitMix64 — deterministic across platforms, which is exactly the
//! property the simulator's per-seed reproducibility contract needs.
//! The stream differs from upstream `rand`'s `StdRng` (upstream makes no
//! cross-version stream guarantee either), so golden fixtures are keyed
//! to this implementation.

#![forbid(unsafe_code)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The convenience sampling surface (`rand` 0.9+ naming: `random`,
/// `random_range`).
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from the full distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, bound)` via Lemire's widening multiply
/// with rejection.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        // Reject the partial final bucket to stay exactly uniform.
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic and portable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(0usize..5);
            assert!(y < 5);
            let z = r.random_range(-0.5f64 + 1.0..2.0);
            assert!((0.5..2.0).contains(&z));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
