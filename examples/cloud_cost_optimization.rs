//! The Section-VI workflow end to end: calibrate the Doppio model for
//! GATK4 with four sample runs on a small cloud cluster, then search the
//! Google-Cloud configuration space for the cheapest way to sequence a
//! genome, comparing against the Spark-website (R1) and Cloudera (R2)
//! provisioning guides.
//!
//! ```sh
//! cargo run --release --example cloud_cost_optimization
//! ```

use doppio::cloud::optimize::{
    grid_search, multi_start_descent, r1_reference, r2_reference, SearchSpace,
};
use doppio::cloud::{CloudPlatform, CostEvaluator};
use doppio::sparksim::SparkConf;
use doppio::workloads::gatk4;
use doppio::workloads::genome::GenomeDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quarter-scale genome keeps the example snappy; pass 1.0 to
    // reproduce the paper's full 500M-read-pair study.
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.25);
    let params = gatk4::Params {
        dataset: GenomeDataset::hcc1954().scaled(scale),
        ..gatk4::Params::paper()
    };
    let app = gatk4::app(&params);

    println!("step 1 — calibrate on a 3-worker cloud cluster (four sample runs,");
    println!("         500 GB SSD PD baseline / 200 GB standard PD stress):");
    let mut platform = CloudPlatform::new(app, 3, 16, SparkConf::paper());
    let report = platform.calibrate_with_resizing("GATK4", 3)?;
    for w in &report.warnings {
        println!("  note: {w}");
    }
    println!(
        "  sample runs took {:.0}/{:.0}/{:.0}/{:.0} simulated minutes",
        report.sample_run_secs[0] / 60.0,
        report.sample_run_secs[1] / 60.0,
        report.sample_run_secs[2] / 60.0,
        report.sample_run_secs[3] / 60.0
    );

    println!();
    println!("step 2 — search the configuration space (10 workers, 16 vCPUs):");
    let eval = CostEvaluator::new(report.model);
    let space = SearchSpace::paper();
    let descent = multi_start_descent(&eval, &space);
    let grid = grid_search(&eval, &space);
    println!(
        "  coordinate descent: {} -> {}  ({} evaluations)",
        descent.config, descent.cost, descent.evaluations
    );
    println!(
        "  exhaustive grid:    {} -> {}  ({} evaluations)",
        grid.config, grid.cost, grid.evaluations
    );

    println!();
    println!("step 3 — compare with the provisioning guides:");
    let r1 = eval.evaluate(&r1_reference(10, 16));
    let r2 = eval.evaluate(&r2_reference(10, 16));
    println!("  R1 (Spark website, 8 TB/node):  {r1}");
    println!("  R2 (Cloudera, 16 TB/node):      {r2}");
    println!(
        "  model-found optimum saves {:.0}% vs R1 and {:.0}% vs R2",
        (1.0 - grid.cost.total() / r1.total()) * 100.0,
        (1.0 - grid.cost.total() / r2.total()) * 100.0
    );
    println!();
    println!("(the paper reports 38% and 57% for the full-scale genome)");
    Ok(())
}
