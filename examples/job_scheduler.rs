//! The paper's job-scheduler use case (Section I): "our performance
//! prediction model can allow the scheduler to know ahead the approximating
//! job execution time and thus enable better job scheduling with less job
//! waiting time."
//!
//! Calibrates models for three heterogeneous jobs, queues them on a shared
//! cluster, and compares FIFO against shortest-predicted-job-first — then
//! checks the predicted schedule against fully simulated runtimes.
//!
//! ```sh
//! cargo run --release --example job_scheduler
//! ```

use doppio::cluster::{presets, ClusterSpec, HybridConfig};
use doppio::model::scheduler::{schedule, Policy, QueuedJob};
use doppio::model::{Calibrator, PredictEnv, SimPlatform};
use doppio::sparksim::{App, Simulation, SparkConf};
use doppio::workloads::{svm, terasort, triangle};

fn calibrated(app: App) -> doppio::model::AppModel {
    let platform = SimPlatform::new(
        app,
        presets::paper_node(36, HybridConfig::SsdSsd),
        3,
        SparkConf::paper(),
    );
    Calibrator::default()
        .calibrate(&platform, "job")
        .expect("calibration succeeds")
        .model
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("calibrating three jobs with the four-sample-run procedure...");
    let jobs = vec![
        QueuedJob::new(
            "terasort",
            calibrated(terasort::app(&terasort::Params::scaled_down())),
            0.0,
        ),
        QueuedJob::new(
            "svm",
            calibrated(svm::app(&svm::Params::scaled_down())),
            0.0,
        ),
        QueuedJob::new(
            "triangle",
            calibrated(triangle::app(&triangle::Params::scaled_down())),
            0.0,
        ),
    ];

    let env = PredictEnv::hybrid(5, 36, HybridConfig::SsdSsd);
    println!();
    println!("predicted runtimes on the shared cluster (5 nodes, 36 cores, 2SSD):");
    for j in &jobs {
        println!("  {:<10} {:>7.1} min", j.name, j.model.predict(&env) / 60.0);
    }

    let fifo = schedule(&jobs, &env, Policy::Fifo);
    let spt = schedule(&jobs, &env, Policy::ShortestPredictedFirst);
    println!();
    println!("FIFO (submission order):");
    print!("{fifo}");
    println!();
    println!("shortest-predicted-first:");
    print!("{spt}");
    println!();
    println!(
        "mean wait improves {:.0}% with model-driven ordering",
        (1.0 - spt.mean_wait_secs() / fifo.mean_wait_secs()) * 100.0
    );

    // Ground-truth check: how accurate were the predictions the scheduler
    // relied on?
    println!();
    println!("prediction vs simulated ground truth:");
    let cluster = ClusterSpec::paper_cluster(5, 36, HybridConfig::SsdSsd);
    for (job, app) in [
        ("terasort", terasort::app(&terasort::Params::scaled_down())),
        ("svm", svm::app(&svm::Params::scaled_down())),
        ("triangle", triangle::app(&triangle::Params::scaled_down())),
    ] {
        let sim = Simulation::with_conf(cluster.clone(), SparkConf::paper().without_noise())
            .run(&app)?
            .total_time()
            .as_secs();
        let pred = jobs
            .iter()
            .find(|j| j.name == job)
            .unwrap()
            .model
            .predict(&env);
        println!(
            "  {:<10} exp {:>6.1} min, model {:>6.1} min ({:+.1}%)",
            job,
            sim / 60.0,
            pred / 60.0,
            (pred / sim - 1.0) * 100.0
        );
    }
    Ok(())
}
