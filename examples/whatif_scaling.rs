//! Model-driven what-if analysis: once calibrated, Equation 1 answers
//! capacity-planning questions in microseconds — "what if I double the
//! cores?", "what if I add nodes?", "would NVMe help?" — the scheduler/
//! provisioning use cases the paper sketches in its introduction.
//!
//! ```sh
//! cargo run --release --example whatif_scaling
//! ```

use doppio::cluster::{presets, HybridConfig};
use doppio::model::whatif::{cores_sweep, local_device_sweep, nodes_sweep};
use doppio::model::{Calibrator, PredictEnv, SimPlatform};
use doppio::sparksim::SparkConf;
use doppio::workloads::terasort;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = terasort::app(&terasort::Params::scaled_down());

    println!("calibrating Terasort with the four-sample-run procedure (N = 3)...");
    let platform = SimPlatform::new(
        app,
        presets::paper_node(36, HybridConfig::SsdSsd),
        3,
        SparkConf::paper(),
    );
    let report = Calibrator::default().calibrate(&platform, "terasort")?;
    let model = report.model;
    for s in model.stages() {
        println!("  {s}");
    }
    println!();

    let base = PredictEnv::hybrid(10, 16, HybridConfig::SsdSsd);

    let cores = cores_sweep(&model, &base, &[4, 8, 12, 16, 24, 36, 48]);
    print!("{cores}");
    match cores.knee(1.10) {
        Some(k) => println!(
            "  -> past {} the next step buys <10%: stop buying cores there.",
            cores.points[k].label
        ),
        None => println!("  -> every step still pays >10%: core-bound throughout."),
    }
    println!();

    let nodes = nodes_sweep(&model, &base, &[2, 4, 8, 16, 32]);
    print!("{nodes}");
    println!();

    let devices = local_device_sweep(
        &model,
        &base,
        &[
            doppio::storage::presets::hdd_wd4000(),
            doppio::storage::presets::ssd_mz7lm(),
            doppio::storage::presets::nvme_p4510(),
        ],
    );
    print!("{devices}");
    println!(
        "  -> best Spark-local device: {} ({:.1} min)",
        devices.best().label,
        devices.best().runtime_secs / 60.0
    );
    println!();

    println!("per-stage bottlenecks at 10 nodes, P = 36, 2HDD:");
    let env = PredictEnv::hybrid(10, 36, HybridConfig::HddHdd);
    for stage in model.stages() {
        let bottleneck = stage
            .bottleneck(&env)
            .map(|c| c.channel.to_string())
            .unwrap_or_else(|| "CPU (scales with cores)".into());
        println!(
            "  {:<6} {:>8.1} min   phase: {:<26} bound by: {}",
            stage.name,
            stage.predict(&env) / 60.0,
            stage.phase(&env).to_string(),
            bottleneck
        );
        for ch in &stage.channels {
            if let Some(big_b) = stage.turning_point(ch, &env) {
                println!(
                    "         {:<14} b = {:>6.1}, B = λ·b = {:>7.1}",
                    ch.channel.to_string(),
                    ch.break_point(&env),
                    big_b
                );
            }
        }
    }
    Ok(())
}
