//! The paper's motivating study in one binary: run the GATK4 genome
//! pipeline under all four Table-III disk configurations and report the
//! per-stage I/O story (Sections II-C and III).
//!
//! ```sh
//! cargo run --release --example gatk4_pipeline [scale] [--extended]
//! ```
//!
//! `scale` (default `0.25`) scales the 500M-read-pair dataset;
//! `--extended` runs the five-stage BWA → MD → BR → SF → HC pipeline the
//! paper lists as future work.

use doppio::cluster::ClusterSpec;
use doppio::cluster::HybridConfig;
use doppio::sparksim::{IoChannel, Simulation, SparkConf};
use doppio::workloads::gatk4;
use doppio::workloads::genome::GenomeDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let extended = args.iter().any(|a| a == "--extended");
    let scale: f64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.25);

    let params = gatk4::Params {
        dataset: GenomeDataset::hcc1954().scaled(scale),
        ..gatk4::Params::paper()
    };
    let app = if extended {
        gatk4::extended_app(&gatk4::ExtendedParams {
            base: params.clone(),
            ..gatk4::ExtendedParams::paper()
        })
    } else {
        gatk4::app(&params)
    };

    println!(
        "GATK4 on a {:.0}M-read-pair genome ({} input, {} shuffle, {} output)",
        params.dataset.read_pairs as f64 / 1e6,
        params.dataset.bam_bytes(),
        params.dataset.shuffle_bytes(),
        params.dataset.output_bytes()
    );
    println!("cluster: 3 slaves x 36 cores (the paper's four-node motivation cluster)");
    println!();
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9}",
        "configuration", "MD (min)", "BR (min)", "SF (min)", "total"
    );

    for config in HybridConfig::ALL {
        let cluster = ClusterSpec::paper_cluster(3, 36, config);
        let run = Simulation::with_conf(cluster, SparkConf::paper()).run(&app)?;
        println!(
            "{:<24} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            config.label(),
            run.stage("MD").map(|s| s.duration.as_mins()).unwrap_or(0.0),
            run.stage("BR").map(|s| s.duration.as_mins()).unwrap_or(0.0),
            run.stage("SF").map(|s| s.duration.as_mins()).unwrap_or(0.0),
            run.total_time().as_mins()
        );
    }

    // Table IV for this dataset.
    println!();
    println!("I/O volumes (Table IV, logical GB):");
    let run = Simulation::with_conf(
        ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdSsd),
        SparkConf::paper(),
    )
    .run(&app)?;
    println!(
        "{:<6} {:>10} {:>14} {:>13} {:>11}",
        "stage", "HDFS read", "shuffle write", "shuffle read", "HDFS write"
    );
    for s in run.stages() {
        println!(
            "{:<6} {:>10.1} {:>14.1} {:>13.1} {:>11.1}",
            s.name,
            s.channel_bytes(IoChannel::HdfsRead).as_gib(),
            s.channel_bytes(IoChannel::ShuffleWrite).as_gib(),
            s.channel_bytes(IoChannel::ShuffleRead).as_gib(),
            s.channel_bytes(IoChannel::HdfsWrite).as_gib() / 2.0, // de-amplify replication
        );
    }
    println!();
    println!("note how BR and SF each re-read the full shuffle output: the markedReads");
    println!(
        "union cannot be cached ({}x memory expansion) and is rebuilt from",
        GenomeDataset::mem_expansion().round()
    );
    println!("shuffle files on every use — the paper's Section III-B2 observation.");
    Ok(())
}
