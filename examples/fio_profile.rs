//! Device profiling, fio-style: print the effective-bandwidth and IOPS
//! tables for the paper's HDD and SSD and for cloud persistent disks —
//! the "one-time disk profiling" lookup tables of Section VI.1.
//!
//! ```sh
//! cargo run --release --example fio_profile
//! ```

use doppio::cloud::{disks, CloudDiskType};
use doppio::events::Bytes;
use doppio::storage::fio::{run_analytic, FioJob};
use doppio::storage::presets;

fn print_table(label: &str, spec: doppio::storage::DeviceSpec) {
    let rows = run_analytic(&FioJob::read_sweep(spec));
    println!();
    println!("{label}:");
    println!("  {:>10} {:>14} {:>12}", "block", "BW (MiB/s)", "IOPS");
    for r in rows {
        println!(
            "  {:>10} {:>14.1} {:>12.0}",
            r.block_size.to_string(),
            r.bandwidth.as_mib_per_sec(),
            r.iops
        );
    }
}

fn main() {
    println!("on-prem devices (Table I; curves anchored to the paper's Fig. 5):");
    print_table("WD4000FYYZ HDD", presets::hdd_wd4000());
    print_table("Samsung MZ7LM SSD", presets::ssd_mz7lm());

    println!();
    println!("cloud persistent disks (throughput and IOPS scale with size):");
    for (t, gb) in [
        (CloudDiskType::StandardPd, 200u64),
        (CloudDiskType::StandardPd, 1000),
        (CloudDiskType::SsdPd, 200),
        (CloudDiskType::SsdPd, 1000),
    ] {
        print_table(
            &format!("{} {gb} GB", t.label()),
            disks::device(t, Bytes::new(gb * 1_000_000_000)),
        );
    }

    println!();
    println!("headline gaps (SSD/HDD): 181x @4KB, 32x @30KB, 3.7x @128MB —");
    println!("the reason shuffle read (30 KB segments) separates the devices while");
    println!("HDFS block I/O (128 MB) barely does.");
}
