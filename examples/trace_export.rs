//! Export a simulated run as a Chrome trace (`chrome://tracing`, Perfetto):
//! nodes become processes, core slots become lanes, stages colour the
//! spans. Useful for *seeing* the paper's waves, stragglers and I/O-bound
//! tails.
//!
//! ```sh
//! cargo run --release --example trace_export > gatk4.trace.json
//! ```

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::sparksim::{trace, Simulation, SparkConf};
use doppio::workloads::gatk4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = gatk4::Params {
        dataset: doppio::workloads::genome::GenomeDataset::hcc1954().scaled(1.0 / 64.0),
        ..gatk4::Params::scaled_down()
    };
    let app = gatk4::app(&params);

    let mut conf = SparkConf::paper().with_cores(8);
    conf.record_task_spans = true;
    let cluster = ClusterSpec::paper_cluster(3, 36, HybridConfig::SsdHdd);
    let run = Simulation::with_conf(cluster, conf).run(&app)?;

    let json = trace::to_chrome_trace(&run).expect("spans were recorded");
    println!("{json}");
    eprintln!(
        "wrote {} trace events across {} stages ({} total); open in chrome://tracing",
        json.matches("\"ph\"").count(),
        run.stages().len(),
        run.total_time()
    );
    Ok(())
}
