//! Quickstart: build a small Spark-like cluster, run a shuffle-heavy job on
//! the simulator, and inspect per-stage metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use doppio::cluster::{ClusterSpec, HybridConfig};
use doppio::events::Bytes;
use doppio::sparksim::{AppBuilder, Cost, IoChannel, ShuffleSpec, Simulation, SparkConf};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A word-count-shaped application: read 16 GiB from HDFS, tokenize,
    // reduce by key, write the counts back.
    let mut b = AppBuilder::new("wordcount");
    let lines = b.hdfs_source("lines", "/corpus.txt", Bytes::from_gib(16));
    let words = b.flat_map(lines, "tokenize", Cost::per_mib(0.004), 1.4);
    let counts = b.reduce_by_key(
        words,
        "count",
        ShuffleSpec::target_reducer_bytes(Bytes::from_mib(32)),
        Cost::per_mib(0.008),
        0.1,
    );
    b.save_as_hadoop_file(counts, "save", "/counts.txt");
    let app = b.build()?;

    // Four worker nodes in the paper's "2SSD" configuration, 8 executor
    // cores each.
    let cluster = ClusterSpec::paper_cluster(4, 8, HybridConfig::SsdSsd);
    let conf = SparkConf::paper().with_cores(8);
    let run = Simulation::with_conf(cluster, conf).run(&app)?;

    println!("{run}");
    println!("per-stage I/O:");
    for stage in run.stages() {
        println!("  {}:", stage.name);
        for ch in IoChannel::DISK_CHANNELS {
            let stats = stage.channel(ch);
            if !stats.bytes.is_zero() {
                println!(
                    "    {:<14} {:>12}  avg request {}",
                    ch.to_string(),
                    stats.bytes.to_string(),
                    stats
                        .avg_request_size()
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "-".into())
                );
            }
        }
        if let Some(lambda) = stage.tasks.lambda() {
            println!("    λ = t_task / t_io = {lambda:.1}");
        }
    }

    // The same job on HDDs: the shuffle read hurts.
    let hdd = Simulation::with_conf(
        ClusterSpec::paper_cluster(4, 8, HybridConfig::HddHdd),
        SparkConf::paper().with_cores(8),
    )
    .run(&app)?;
    println!(
        "total runtime: 2SSD {:.1} min vs 2HDD {:.1} min ({:.1}x)",
        run.total_time().as_mins(),
        hdd.total_time().as_mins(),
        hdd.total_time().as_secs() / run.total_time().as_secs()
    );
    Ok(())
}
